// Timeline wiring for spstad: collectors that scrape the service
// registry and Go runtime into the in-process time-series store, the
// default SLO objectives, and the /debug/timeline + /debug/slo
// endpoints. See DESIGN.md §17 for the sampling cost model.
package service

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/timeline"
)

// Timeline series names. Request series follow req.<engine>.<what>
// with a synthetic req.total.* aggregated across engines so SLO
// objectives do not depend on the traffic mix.
const (
	seriesReqTotalCount   = "req.total.count"
	seriesReqTotalErrors  = "req.total.errors"
	seriesReqTotalLatency = "req.total.latency"
	seriesQueueDepth      = "pool.queue_depth"
	seriesInflight        = "pool.inflight"
	seriesRejected        = "pool.rejected"
	seriesCacheHits       = "cache.hits"
	seriesCacheMisses     = "cache.misses"
	seriesCacheLookups    = "cache.lookups"
	seriesCacheEvictions  = "cache.evictions"
	seriesCacheBytes      = "cache.bytes"
	seriesSFShared        = "singleflight.shared"
	seriesRegEntries      = "registry.entries"
	seriesRegEvictions    = "registry.evictions"
	seriesDeltaNets       = "delta.nets_recomputed"
	seriesDriftMeanDev    = "drift.mean_dev"
	seriesDriftSigmaDev   = "drift.sigma_dev"
	seriesDriftSamples    = "drift.samples"
	seriesCost            = "cost"
	seriesGoroutines      = "runtime.goroutines"
	seriesHeapInuse       = "runtime.heap_inuse"
	seriesGCPause         = "runtime.gc_pause_total"
)

// Default objective names, referenced by tests and the soak harness.
const (
	objAvailability = "availability"
	objLatency      = "latency-p99"
	objRejection    = "rejection-rate"
	objCacheFloor   = "cache-hit-floor"
	objDrift        = "accuracy-drift"
)

// registryCollector scrapes the service registry's atomics into one
// tick. One pass over a fixed set of atomics: ~1µs per tick plus the
// histogram snapshot copies, so a 1s interval costs well under 0.01%
// of one core (the bench guard enforces <2% end to end).
func (s *Service) registryCollector(b *timeline.Batch) {
	r := &s.reg
	var totalReq, totalErr int64
	var totalBuckets [len(latencyBounds) + 1]int64
	var buckets [len(latencyBounds) + 1]int64
	for i, l := range engineLabels {
		req := r.requests[i].Load()
		errs := r.errors[i].Load()
		totalReq += req
		totalErr += errs
		h := &r.latency[i]
		for bkt := range buckets {
			c := h.buckets[bkt].Load()
			buckets[bkt] = c
			totalBuckets[bkt] += c
		}
		b.Counter("req."+l+".count", float64(req))
		b.Counter("req."+l+".errors", float64(errs))
		if h.count.Load() > 0 {
			b.Hist("req."+l+".latency", latencyBounds[:], buckets[:])
		}
	}
	b.Counter(seriesReqTotalCount, float64(totalReq))
	b.Counter(seriesReqTotalErrors, float64(totalErr))
	b.Hist(seriesReqTotalLatency, latencyBounds[:], totalBuckets[:])

	b.Gauge(seriesQueueDepth, float64(r.queueDepth.Load()))
	b.Gauge(seriesInflight, float64(r.inflight.Load()))
	b.Counter(seriesRejected, float64(r.rejected.Load()))

	hits, misses := r.cacheHits.Load(), r.cacheMisses.Load()
	b.Counter(seriesCacheHits, float64(hits))
	b.Counter(seriesCacheMisses, float64(misses))
	b.Counter(seriesCacheLookups, float64(hits+misses))
	b.Counter(seriesCacheEvictions, float64(r.cacheEvictions.Load()))
	b.Gauge(seriesCacheBytes, float64(r.cacheBytes.Load()))
	b.Counter(seriesSFShared, float64(r.singleflightShared.Load()))
	b.Gauge(seriesRegEntries, float64(r.registryEntries.Load()))
	b.Counter(seriesRegEvictions, float64(r.registryEvictions.Load()))
	b.Counter(seriesDeltaNets, float64(r.deltaNets.Load()))

	b.Gauge(seriesDriftMeanDev, r.driftMeanDev.Load())
	b.Gauge(seriesDriftSigmaDev, r.driftSigmaDev.Load())
	b.Counter(seriesDriftSamples, float64(r.driftSamples.Load()))

	var costBuckets [len(costBounds) + 1]int64
	for i := range costBuckets {
		costBuckets[i] = r.cost.buckets[i].Load()
	}
	b.Hist(seriesCost, costBounds[:], costBuckets[:])
}

// runtimeCollector samples process-level gauges. ReadMemStats briefly
// stops the world; at the default 1s interval this is noise, but it is
// the dominant term of the sampling cost model (DESIGN.md §17).
func runtimeCollector(b *timeline.Batch) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.Gauge(seriesGoroutines, float64(runtime.NumGoroutine()))
	b.Gauge(seriesHeapInuse, float64(ms.HeapInuse))
	b.Counter(seriesGCPause, float64(ms.PauseTotalNs)/1e9)
}

// defaultObjectives builds the service's SLO set from Config. Every
// objective uses the classic two-window burn-rate rule: the slow
// window proves the problem is sustained, the fast window proves it is
// still happening and clears the alert promptly.
func defaultObjectives(cfg Config) []timeline.Objective {
	fast := cfg.SLOFastWindow
	if fast <= 0 {
		fast = 1 * time.Minute
	}
	slow := cfg.SLOSlowWindow
	if slow <= 0 {
		slow = 5 * time.Minute
	}
	fastBurn := cfg.SLOFastBurn
	if fastBurn <= 0 {
		fastBurn = 2
	}
	slowBurn := cfg.SLOSlowBurn
	if slowBurn <= 0 {
		slowBurn = 1
	}
	windows := []timeline.BurnWindow{
		{Window: fast, Threshold: fastBurn},
		{Window: slow, Threshold: slowBurn},
	}
	avail := cfg.SLOAvailability
	if avail <= 0 {
		avail = 0.99
	}
	latTarget := cfg.SLOLatencyTarget
	if latTarget <= 0 {
		latTarget = 0.99
	}
	latThresh := cfg.SLOLatencyThreshold
	if latThresh <= 0 {
		latThresh = 0.5
	}
	rejBudget := cfg.SLORejectionBudget
	if rejBudget <= 0 {
		rejBudget = 0.01
	}
	objs := []timeline.Objective{
		{
			Name: objAvailability, Kind: timeline.KindRatio,
			Bad: seriesReqTotalErrors, Total: seriesReqTotalCount,
			Target: avail, Windows: windows,
		},
		{
			Name: objLatency, Kind: timeline.KindLatency,
			Hist: seriesReqTotalLatency, Threshold: latThresh,
			Target: latTarget, Windows: windows,
		},
		{
			Name: objRejection, Kind: timeline.KindRatio,
			Bad: seriesRejected, Total: seriesReqTotalCount,
			Target: 1 - rejBudget, Windows: windows,
		},
	}
	if cfg.SLOCacheHitFloor > 0 {
		objs = append(objs, timeline.Objective{
			Name: objCacheFloor, Kind: timeline.KindRatio,
			Bad: seriesCacheMisses, Total: seriesCacheLookups,
			Target: cfg.SLOCacheHitFloor, Windows: windows,
		})
	}
	if cfg.SLODriftBound > 0 {
		objs = append(objs, timeline.Objective{
			Name: objDrift, Kind: timeline.KindGauge,
			Series: seriesDriftMeanDev, Bound: cfg.SLODriftBound,
			Windows: windows,
		})
	}
	return objs
}

// sloBurning snapshots the currently-burning objective names (nil when
// the timeline is disabled or everything is healthy).
func (s *Service) sloBurning() []string {
	if s.tl == nil {
		return nil
	}
	return s.tl.SLO().Burning()
}

// recordFlight stamps the flight summary with the burning objectives
// and hands it to the recorder, so every /debug/requests entry shows
// which SLOs were on fire while it ran.
func (s *Service) recordFlight(sum RequestSummary, scope *obs.Scope) bool {
	sum.SLOBurning = s.sloBurning()
	return s.flight.record(sum, scope)
}

// TimelineResponse is the body of GET /debug/timeline.
type TimelineResponse struct {
	Now        time.Time             `json:"now"`
	IntervalMS int64                 `json:"interval_ms,omitzero"`
	Samples    int64                 `json:"samples"`
	Series     []timeline.SeriesData `json:"series"`
}

// handleTimeline serves windowed, downsampled series data:
// ?series=a,b ?window=5m ?points=200 (all optional; default every
// series over the last 15 minutes).
func (s *Service) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if s.tl == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "timeline disabled (start with -timeline-interval > 0)"})
		return
	}
	q := r.URL.Query()
	window := 15 * time.Minute
	if ws := q.Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad window: want a positive Go duration like 5m"})
			return
		}
		window = d
	}
	points := 200
	if ps := q.Get("points"); ps != "" {
		n, err := strconv.Atoi(ps)
		if err != nil || n <= 0 || n > 10000 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad points: want an integer in [1, 10000]"})
			return
		}
		points = n
	}
	var names []string
	if ss := q.Get("series"); ss != "" {
		for _, n := range strings.Split(ss, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	now := time.Now()
	resp := &TimelineResponse{
		Now:        now,
		IntervalMS: s.cfg.TimelineInterval.Milliseconds(),
		Samples:    s.tl.Samples(),
		Series:     s.tl.Query(names, now.Add(-window), now, points),
	}
	writeJSON(w, http.StatusOK, resp)
}

// LatencySummary is one histogram series' windowed percentile summary
// in GET /debug/slo, computed by exact within-bucket interpolation.
type LatencySummary struct {
	Series   string  `json:"series"`
	WindowMS int64   `json:"window_ms"`
	Count    int64   `json:"count"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
}

// SLOResponse is the body of GET /debug/slo; spstasoak polls it.
type SLOResponse struct {
	Now        time.Time                  `json:"now"`
	Burning    []string                   `json:"burning"`
	Objectives []timeline.ObjectiveStatus `json:"objectives"`
	Latency    []LatencySummary           `json:"latency"`
	Captures   int64                      `json:"captures"`
}

// handleSLO serves the SLO engine's state plus windowed latency
// percentiles (?window=, default 5m) for the total and per-engine
// request histograms.
func (s *Service) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.tl == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "timeline disabled (start with -timeline-interval > 0)"})
		return
	}
	window := 5 * time.Minute
	if ws := r.URL.Query().Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad window: want a positive Go duration like 5m"})
			return
		}
		window = d
	}
	now := time.Now()
	resp := &SLOResponse{
		Now:        now,
		Burning:    s.sloBurning(),
		Objectives: s.tl.SLO().Status(),
	}
	if resp.Burning == nil {
		resp.Burning = []string{}
	}
	names := []string{seriesReqTotalLatency}
	for _, l := range engineLabels {
		names = append(names, "req."+l+".latency")
	}
	for _, name := range names {
		count, p50, p95, p99, ok := s.tl.Percentiles(name, now, window)
		if !ok || count == 0 {
			continue
		}
		resp.Latency = append(resp.Latency, LatencySummary{
			Series: name, WindowMS: window.Milliseconds(),
			Count: count, P50: p50, P95: p95, P99: p99,
		})
	}
	if s.captures != nil {
		resp.Captures = s.captures.taken.Load()
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeSLOMetrics appends the spstad_slo_* and spstad_timeline_*
// series to the Prometheus exposition.
func (s *Service) writeSLOMetrics(w io.Writer) {
	if s.tl == nil {
		return
	}
	fmt.Fprintf(w, "# HELP spstad_timeline_samples_total Timeline sampler ticks taken.\n# TYPE spstad_timeline_samples_total counter\n")
	fmt.Fprintf(w, "spstad_timeline_samples_total %d\n", s.tl.Samples())
	status := s.tl.SLO().Status()
	if len(status) > 0 {
		fmt.Fprintf(w, "# HELP spstad_slo_burning Whether the objective is currently in violation (all burn windows over threshold).\n# TYPE spstad_slo_burning gauge\n")
		for _, st := range status {
			v := 0
			if st.Burning {
				v = 1
			}
			fmt.Fprintf(w, "spstad_slo_burning{objective=%q} %d\n", st.Name, v)
		}
		fmt.Fprintf(w, "# HELP spstad_slo_burn_rate Error-budget burn rate per objective and window (1 = exactly at the objective).\n# TYPE spstad_slo_burn_rate gauge\n")
		for _, st := range status {
			for _, ws := range st.Windows {
				fmt.Fprintf(w, "spstad_slo_burn_rate{objective=%q,window=%q} %g\n",
					st.Name, time.Duration(ws.WindowMS)*time.Millisecond, ws.Burn)
			}
		}
		fmt.Fprintf(w, "# HELP spstad_slo_transitions_total SLO state transitions (fire or clear) per objective.\n# TYPE spstad_slo_transitions_total counter\n")
		for _, st := range status {
			fmt.Fprintf(w, "spstad_slo_transitions_total{objective=%q} %d\n", st.Name, st.Transitions)
		}
	}
	if s.captures != nil {
		fmt.Fprintf(w, "# HELP spstad_slo_captures_total Auto-capture bundles written on SLO violations.\n# TYPE spstad_slo_captures_total counter\n")
		fmt.Fprintf(w, "spstad_slo_captures_total %d\n", s.captures.taken.Load())
	}
}
