package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/synth"
)

// TestBenchGuardCacheAndDelta enforces the serving-layer performance
// contracts introduced with the netlist registry, result cache and
// /v1/delta (DESIGN.md §16), measured end to end through HTTP on the
// two deepest benchmark circuits:
//
//   - cache hit: the p99 of repeated identical /v1/analyze requests
//     must be at least 50x faster than the cold request that filled
//     the entry. A hit is a map lookup plus JSON encoding; everything
//     engine-shaped has left the path.
//   - delta: a warm single-edit /v1/delta (deepest gate, so the
//     recomputed fanout cone is small) must be at least 5x faster
//     than a full uncached re-analysis of the same configuration.
//   - single-flight: concurrent identical cold requests run the
//     engine exactly once — the Monte Carlo runs counter, which only
//     the engine increments, equals one request's worth.
//
// Opt-in via BENCH_GUARD=1 like the other guards.
func TestBenchGuardCacheAndDelta(t *testing.T) {
	if os.Getenv("BENCH_GUARD") != "1" {
		t.Skip("set BENCH_GUARD=1 (or run `make bench-guard`) to measure cache and delta latency")
	}
	for _, name := range deepestProfiles(t, 2) {
		t.Run(name, func(t *testing.T) {
			guardCacheHit(t, name)
			guardDelta(t, name)
		})
	}
	guardSingleFlight(t)
}

func guardPost(t *testing.T, url, body string) ([]byte, time.Duration) {
	t.Helper()
	start := time.Now()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, b)
	}
	return b, el
}

// guardCacheHit: cold request vs p99 over repeated identical hits.
func guardCacheHit(t *testing.T, name string) {
	svc := service.New(service.Config{MaxConcurrent: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := fmt.Sprintf(`{"circuit":%q,"engine":"spsta","sigma":0.2}`, name)
	_, cold := guardPost(t, srv.URL+"/v1/analyze", body)

	b, _ := guardPost(t, srv.URL+"/v1/analyze", body)
	var r service.Response
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if !r.Engines[0].Cached {
		t.Fatal("second identical request was not served from the cache")
	}

	// Per-round p99 with the best round kept, the latency analogue of
	// the min-of-N timing the other guards use: one GC pause or
	// scheduler blip in a round's tail does not condemn the cache.
	const rounds, hits = 3, 200
	p99, p50 := time.Hour, time.Duration(0)
	for round := 0; round < rounds; round++ {
		runtime.GC()
		lat := make([]time.Duration, hits)
		for i := range lat {
			_, lat[i] = guardPost(t, srv.URL+"/v1/analyze", body)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		if q := lat[len(lat)*99/100]; q < p99 {
			p99, p50 = q, lat[len(lat)/2]
		}
	}
	ratio := float64(cold) / float64(p99)
	t.Logf("%s: cold %v, hit p50 %v p99 %v, speedup %.0fx", name, cold, p50, p99, ratio)
	if ratio < 50 {
		t.Errorf("cache-hit p99 %v only %.1fx faster than cold %v on %s, want >= 50x",
			p99, ratio, cold, name)
	}
}

// guardDelta: warm single-edit delta vs full uncached re-analysis.
// The edited gate is the deepest combinational node (deterministic
// tie-break by name), so the recomputed cone is a small tail of the
// circuit — the case incremental analysis exists for.
func guardDelta(t *testing.T, name string) {
	// Cache disabled so every /v1/analyze measures a real engine run.
	svc := service.New(service.Config{MaxConcurrent: 2, CacheBytes: -1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	p, ok := synth.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	c, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	gate := ""
	best := -1
	for _, n := range c.Nodes {
		if n.Type.Combinational() && (n.Level > best || (n.Level == best && n.Name < gate)) {
			gate, best = n.Name, n.Level
		}
	}

	analyzeBody := fmt.Sprintf(`{"circuit":%q,"engine":"spsta","sigma":0.2}`, name)
	deltaBody := func(mu float64) string {
		return fmt.Sprintf(`{"circuit":%q,"sigma":0.2,"edits":[{"gate":%q,"mu":%g,"sigma":0.2}]}`,
			name, gate, mu)
	}
	guardPost(t, srv.URL+"/v1/analyze", analyzeBody)  // warm-up
	guardPost(t, srv.URL+"/v1/delta", deltaBody(1.1)) // hydrate the session

	const rounds = 5
	minFull, minDelta := time.Hour, time.Hour
	nets := -1
	for r := 0; r < rounds; r++ {
		if _, el := guardPost(t, srv.URL+"/v1/analyze", analyzeBody); el < minFull {
			minFull = el
		}
		// A different mu each round so the reconcile always recomputes.
		b, el := guardPost(t, srv.URL+"/v1/delta", deltaBody(1.2+float64(r)*0.1))
		if el < minDelta {
			minDelta = el
		}
		var dr service.DeltaResponse
		if err := json.Unmarshal(b, &dr); err != nil {
			t.Fatal(err)
		}
		if dr.Session != "warm" {
			t.Fatalf("round %d: session %q, want warm", r, dr.Session)
		}
		nets = dr.NetsRecomputed
	}
	ratio := float64(minFull) / float64(minDelta)
	t.Logf("%s: full %v, single-edit delta %v (%d nets recomputed), speedup %.1fx",
		name, minFull, minDelta, nets, ratio)
	if ratio < 5 {
		t.Errorf("single-edit delta %v only %.1fx faster than full %v on %s, want >= 5x",
			minDelta, ratio, minFull, name)
	}
}

// guardSingleFlight: concurrent identical cold requests collapse to
// one engine run, verified by the engine-side runs counter.
func guardSingleFlight(t *testing.T) {
	svc := service.New(service.Config{MaxConcurrent: 4})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	const n = 8
	const runs = 100000
	body := fmt.Sprintf(`{"circuit":"s1238","engine":"mc","runs":%d,"seed":3}`, runs)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exposition, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(exposition), "\n") {
		if rest, ok := strings.CutPrefix(line, "spstad_engine_mc_runs_total "); ok {
			if strings.TrimSpace(rest) != fmt.Sprint(runs) {
				t.Fatalf("spstad_engine_mc_runs_total %s after %d concurrent identical requests, "+
					"want %d (exactly one engine run)", rest, n, runs)
			}
			t.Logf("single-flight: %d concurrent requests, engine ran once (%d mc runs)", n, runs)
			return
		}
	}
	t.Fatal("spstad_engine_mc_runs_total not found in exposition")
}
