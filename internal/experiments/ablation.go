package experiments

import (
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/montecarlo"
	"repro/internal/report"
	"repro/internal/ssta"
	"repro/internal/symbolic"
)

// AblationRow compares every timing abstraction in the repository on
// one circuit's critical endpoint (rise direction, scenario I):
// discretized SPSTA, analytic (Clark) SPSTA, symbolic canonical
// SPSTA, exact-probability SPSTA, the SSTA baseline, and Monte
// Carlo. This extends the paper's evaluation with the
// accuracy/efficiency tradeoff Sections 3.4–3.6 describe
// qualitatively.
type AblationRow struct {
	Case string

	MCMu, MCSigma             float64
	DiscreteMu, DiscreteSigma float64
	MomentMu, MomentSigma     float64
	SymbolicMu, SymbolicSigma float64
	ExactP, DiscreteP, MCP    float64
	SSTAMu, SSTASigma         float64
}

// Ablation runs the abstraction comparison for the configured
// circuits under scenario I.
func Ablation(cfg Config) ([]AblationRow, error) {
	circuits, err := cfg.circuits()
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, c := range circuits {
		in := Inputs(c, ScenarioI)
		end := c.CriticalEndpoint()

		discrete := core.Analyzer{Obs: cfg.Obs}
		dres, err := discrete.Run(c, in)
		if err != nil {
			return nil, err
		}
		analytic := core.MomentTiming{Obs: cfg.Obs}
		mres, err := analytic.Run(c, in)
		if err != nil {
			return nil, err
		}
		sres, err := symbolic.AnalyzeSPSTA(c, in, symbolic.UnitDelay(1), 1)
		if err != nil {
			return nil, err
		}
		exact := core.Analyzer{ExactProbabilities: true, Obs: cfg.Obs}
		eres, err := exact.Run(c, in)
		if err != nil {
			return nil, err
		}
		sst := ssta.Analyze(c, in, nil)
		mc, err := montecarlo.Simulate(c, in, montecarlo.Config{Runs: cfg.runs(), Seed: cfg.Seed, Packed: cfg.Packed, Obs: cfg.Obs})
		if err != nil {
			return nil, err
		}

		row := AblationRow{Case: c.Name}
		row.DiscreteMu, row.DiscreteSigma, row.DiscreteP = dres.Arrival(end, ssta.DirRise)
		ma, _ := mres.Arrival(end, ssta.DirRise)
		row.MomentMu, row.MomentSigma = ma.Mu, ma.Sigma
		sa, _ := sres.At(end, ssta.DirRise)
		row.SymbolicMu, row.SymbolicSigma = sa.Mean(), sa.Sigma()
		row.ExactP = eres.Probability(end, logic.Rise)
		s := sst.At(end, ssta.DirRise)
		row.SSTAMu, row.SSTASigma = s.Mu, s.Sigma
		m := mc.Arrival(end, ssta.DirRise)
		row.MCMu, row.MCSigma = m.Mean(), m.Sigma()
		row.MCP = mc.P(end, logic.Rise)
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteAblation renders the abstraction comparison.
func WriteAblation(w io.Writer, rows []AblationRow) error {
	t := report.Table{
		Title: "Abstraction ablation: critical-endpoint rise arrival, scenario I",
		Headers: []string{"test", "MC mu", "sig",
			"disc mu", "sig", "mom mu", "sig", "sym mu", "sig",
			"SSTA mu", "sig", "P disc", "P exact", "P MC"},
	}
	for _, r := range rows {
		t.Add(r.Case, report.F(r.MCMu), report.F(r.MCSigma),
			report.F(r.DiscreteMu), report.F(r.DiscreteSigma),
			report.F(r.MomentMu), report.F(r.MomentSigma),
			report.F(r.SymbolicMu), report.F(r.SymbolicSigma),
			report.F(r.SSTAMu), report.F(r.SSTASigma),
			report.F3(r.DiscreteP), report.F3(r.ExactP), report.F3(r.MCP))
	}
	return t.Render(w)
}

// AblationAgreement summarizes how closely the three SPSTA timing
// abstractions agree pairwise (max |Δmu| over rows) — they implement
// the same mixture algebra at different fidelities, so large gaps
// indicate a representation artifact.
func AblationAgreement(rows []AblationRow) (discVsMom, discVsSym float64) {
	for _, r := range rows {
		if d := math.Abs(r.DiscreteMu - r.MomentMu); d > discVsMom {
			discVsMom = d
		}
		if d := math.Abs(r.DiscreteMu - r.SymbolicMu); d > discVsSym {
			discVsSym = d
		}
	}
	return discVsMom, discVsSym
}
