// Package synth generates synthetic benchmark circuits matched to
// the published profiles of the ISCAS'89 circuits the paper
// evaluates on (s208 … s1238): the same primary-input, output,
// flip-flop and gate counts, a realistic gate-type mix, and a
// controlled logic depth. Generation is deterministic per profile,
// so every analyzer sees the identical circuit.
//
// This is the substitution documented in DESIGN.md §4: the original
// ISCAS'89 netlists are not redistributable inside this offline
// repository, and the paper's experiments measure distribution
// propagation through a levelized gate DAG, which profile-matched
// DAGs exercise identically. Genuine ISCAS'89 .bench files can be
// used instead through internal/bench.
package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Profile describes the shape of a circuit to generate.
type Profile struct {
	Name    string
	Inputs  int // primary inputs
	Outputs int // primary outputs
	DFFs    int // D flip-flops
	Gates   int // combinational gates
	Depth   int // unit-delay logic depth
	// MaxFanin bounds gate fanin (0 means the default of 4).
	MaxFanin int
	// Seed overrides the name-derived RNG seed when nonzero.
	Seed int64
}

// Profiles returns the nine benchmark profiles used in the paper's
// Tables 2 and 3, with the published ISCAS'89 size parameters and
// depths matched to the paper's unit-delay critical-path lengths.
func Profiles() []Profile {
	return []Profile{
		{Name: "s208", Inputs: 10, Outputs: 1, DFFs: 8, Gates: 96, Depth: 8},
		{Name: "s298", Inputs: 3, Outputs: 6, DFFs: 14, Gates: 119, Depth: 6},
		{Name: "s344", Inputs: 9, Outputs: 11, DFFs: 15, Gates: 160, Depth: 9},
		{Name: "s349", Inputs: 9, Outputs: 11, DFFs: 15, Gates: 161, Depth: 9},
		{Name: "s382", Inputs: 3, Outputs: 6, DFFs: 21, Gates: 158, Depth: 7},
		{Name: "s386", Inputs: 7, Outputs: 7, DFFs: 6, Gates: 159, Depth: 8},
		{Name: "s526", Inputs: 3, Outputs: 6, DFFs: 21, Gates: 193, Depth: 6},
		{Name: "s1196", Inputs: 14, Outputs: 14, DFFs: 18, Gates: 529, Depth: 14},
		{Name: "s1238", Inputs: 14, Outputs: 14, DFFs: 18, Gates: 508, Depth: 13},
	}
}

// ProfileByName looks up one of the standard profiles.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Validate checks the profile's parameters for consistency.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("synth: profile needs a name")
	case p.Inputs+p.DFFs < 1:
		return fmt.Errorf("synth: %s has no launch points", p.Name)
	case p.Gates < 1:
		return fmt.Errorf("synth: %s has no gates", p.Name)
	case p.Depth < 1:
		return fmt.Errorf("synth: %s has depth %d", p.Name, p.Depth)
	case p.Gates < p.Depth:
		return fmt.Errorf("synth: %s has %d gates for depth %d", p.Name, p.Gates, p.Depth)
	case p.Outputs < 0 || p.Outputs > p.Gates:
		return fmt.Errorf("synth: %s has %d outputs for %d gates", p.Name, p.Outputs, p.Gates)
	case p.DFFs > p.Gates:
		return fmt.Errorf("synth: %s has %d DFFs for %d gates", p.Name, p.DFFs, p.Gates)
	case p.MaxFanin < 0 || p.MaxFanin == 1:
		return fmt.Errorf("synth: %s has max fanin %d", p.Name, p.MaxFanin)
	}
	return nil
}

// gate-type mix mirroring the ISCAS'89 suite: inverter-rich with a
// NAND/NOR core and a sprinkle of parity logic.
var gateMix = []struct {
	t logic.GateType
	w int // weight out of 100
}{
	{logic.And, 18},
	{logic.Nand, 24},
	{logic.Or, 14},
	{logic.Nor, 14},
	{logic.Not, 18},
	{logic.Buf, 4},
	{logic.Xor, 5},
	{logic.Xnor, 3},
}

func pickGateType(rng *rand.Rand) logic.GateType {
	r := rng.Intn(100)
	for _, m := range gateMix {
		if r < m.w {
			return m.t
		}
		r -= m.w
	}
	return logic.Nand
}

// Generate builds the circuit for a profile. The result is frozen
// and has exactly the profile's input/output/DFF/gate counts and
// logic depth.
func Generate(p Profile) (*netlist.Circuit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxFanin := p.MaxFanin
	if maxFanin == 0 {
		maxFanin = 4
	}
	seed := p.Seed
	if seed == 0 {
		seed = int64(hashName(p.Name))
	}
	rng := rand.New(rand.NewSource(seed))

	// 1. Assign a level in [1, Depth] to every gate: one gate pins
	// each level (so the depth is exact), the rest skew toward the
	// shallow levels like real circuits.
	levels := make([]int, p.Gates)
	for i := 0; i < p.Depth; i++ {
		levels[i] = i + 1
	}
	for i := p.Depth; i < p.Gates; i++ {
		// Triangular-ish skew: min of two uniforms.
		a, b := 1+rng.Intn(p.Depth), 1+rng.Intn(p.Depth)
		if b < a {
			a = b
		}
		levels[i] = a
	}
	rng.Shuffle(len(levels), func(i, j int) { levels[i], levels[j] = levels[j], levels[i] })
	// Gate i is named G<i+1> and has level levels[i].
	gateName := func(i int) string { return fmt.Sprintf("G%d", i+1) }

	// Index gates by level for fanin selection.
	byLevel := make([][]int, p.Depth+1)
	for i, l := range levels {
		byLevel[l] = append(byLevel[l], i)
	}
	deepest := -1
	for _, i := range byLevel[p.Depth] {
		if deepest == -1 || i < deepest {
			deepest = i
		}
	}

	// 2. Choose output gates (always including a deepest gate, so
	// the critical endpoint has the profile depth) and DFF D pins
	// (biased deep so sequential paths are long, as in the real
	// suite).
	outputs := chooseBiasedDeep(rng, levels, p.Outputs, deepest)
	dpins := chooseBiasedDeep(rng, levels, p.DFFs, -1)

	c := netlist.New(p.Name)
	for i := 0; i < p.Inputs; i++ {
		if _, err := c.AddNode(fmt.Sprintf("I%d", i), logic.Input); err != nil {
			return nil, err
		}
	}
	for i := 0; i < p.DFFs; i++ {
		// Forward reference to the chosen D-pin gate.
		if _, err := c.AddNode(fmt.Sprintf("Q%d", i), logic.DFF, gateName(dpins[i])); err != nil {
			return nil, err
		}
	}

	// Launch-point names for level-0 fanin.
	var launch []string
	for i := 0; i < p.Inputs; i++ {
		launch = append(launch, fmt.Sprintf("I%d", i))
	}
	for i := 0; i < p.DFFs; i++ {
		launch = append(launch, fmt.Sprintf("Q%d", i))
	}

	// candidates[l] lists net names at exactly level l.
	candidates := make([][]string, p.Depth+1)
	candidates[0] = launch

	// 3. Create the gates level by level. Each gate takes one fanin
	// from level-1 (making its level exact) and the rest from any
	// lower level.
	order := make([]int, p.Gates)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if levels[order[a]] != levels[order[b]] {
			return levels[order[a]] < levels[order[b]]
		}
		return order[a] < order[b]
	})
	// below[l] accumulates all names at level < l.
	var below []string
	curLevel := 0
	for _, gi := range order {
		l := levels[gi]
		for curLevel < l {
			below = append(below, candidates[curLevel]...)
			curLevel++
		}
		gt := pickGateType(rng)
		prev := candidates[l-1]
		if len(prev) == 0 {
			return nil, fmt.Errorf("synth: %s level %d empty (internal error)", p.Name, l-1)
		}
		var fanin []string
		first := prev[rng.Intn(len(prev))]
		fanin = append(fanin, first)
		if gt != logic.Not && gt != logic.Buf {
			k := 2 + rng.Intn(maxFanin-1)
			if gt.Parity() {
				k = 2 // keep parity gates narrow (O(4^k) analysis)
			}
			seen := map[string]bool{first: true}
			for len(fanin) < k {
				cand := below[rng.Intn(len(below))]
				if seen[cand] {
					// Tolerate saturation on tiny lower cones.
					if len(seen) >= len(below) {
						break
					}
					continue
				}
				seen[cand] = true
				fanin = append(fanin, cand)
			}
			if len(fanin) < 2 {
				gt = logic.Not
				fanin = fanin[:1]
			}
		}
		if _, err := c.AddNode(gateName(gi), gt, fanin...); err != nil {
			return nil, err
		}
		candidates[l] = append(candidates[l], gateName(gi))
	}

	for _, gi := range outputs {
		c.MarkOutput(gateName(gi))
	}
	if err := c.Freeze(); err != nil {
		return nil, err
	}
	return c, nil
}

// chooseBiasedDeep picks n distinct gate indices, biased toward
// deeper levels (tournament of two uniform picks keeping the
// deeper). If include is non-negative it is always part of the
// result.
func chooseBiasedDeep(rng *rand.Rand, levels []int, n, include int) []int {
	chosen := make(map[int]bool)
	var out []int
	if include >= 0 && n > 0 {
		chosen[include] = true
		out = append(out, include)
	}
	for len(out) < n {
		a, b := rng.Intn(len(levels)), rng.Intn(len(levels))
		if levels[b] > levels[a] {
			a = b
		}
		if chosen[a] {
			if len(chosen) >= len(levels) {
				break
			}
			continue
		}
		chosen[a] = true
		out = append(out, a)
	}
	return out
}

// hashName is a small FNV-1a so profile names map to stable seeds.
func hashName(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// GenerateAll generates every standard profile.
func GenerateAll() ([]*netlist.Circuit, error) {
	var out []*netlist.Circuit
	for _, p := range Profiles() {
		c, err := Generate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
