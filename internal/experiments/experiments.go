// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4): Table 2 (critical-path arrival
// statistics for SPSTA vs SSTA vs 10k-run Monte Carlo under two
// input-statistics scenarios), Table 3 (analyzer runtimes), and
// Figures 1–4. cmd/experiments and the top-level benchmarks drive
// this package; EXPERIMENTS.md records its output against the
// paper's numbers.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/logic"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/ssta"
	"repro/internal/synth"
)

// Scenario selects the paper's launch-point statistics.
type Scenario int

const (
	// ScenarioI: 0.25 probability each of 0/1/r/f (Section 4,
	// experiment part I).
	ScenarioI Scenario = iota
	// ScenarioII: 75% zero, 15% one, 2% rise, 8% fall (part II).
	ScenarioII
)

// String returns "I" or "II".
func (s Scenario) String() string {
	if s == ScenarioI {
		return "I"
	}
	return "II"
}

// Stats returns the launch-point statistics of the scenario.
func (s Scenario) Stats() logic.InputStats {
	if s == ScenarioI {
		return logic.UniformStats()
	}
	return logic.SkewedStats()
}

// Inputs assigns the scenario statistics to every launch point.
func Inputs(c *netlist.Circuit, s Scenario) map[netlist.NodeID]logic.InputStats {
	m := make(map[netlist.NodeID]logic.InputStats)
	for _, id := range c.LaunchPoints() {
		m[id] = s.Stats()
	}
	return m
}

// Config parameterizes the experiment harness.
type Config struct {
	// MCRuns is the Monte Carlo run count (default 10000, the
	// paper's setting).
	MCRuns int
	// Seed seeds the Monte Carlo RNG (default 1).
	Seed int64
	// Circuits restricts the benchmark set (default: all nine).
	Circuits []string
	// Workers sets the SPSTA level-parallel worker count and the
	// Monte Carlo shard count (0 = GOMAXPROCS inside each engine).
	// SPSTA results are identical for any worker count; Monte Carlo
	// results are determined by the (Seed, Workers) pair.
	Workers int
	// Packed selects the word-packed bit-parallel Monte Carlo engine
	// (montecarlo.Config.Packed); results are bit-identical to the
	// scalar engine for the same (Seed, Workers).
	Packed bool
	// Epsilon is the SPSTA adaptive-pruning error budget per net
	// (core.Analyzer.ErrorBudget); 0 runs the exact engine. Pruned
	// runs carry a certificate: every reported probability deviates
	// from exact by at most the consumed budget.
	Epsilon float64
	// Coarsen is the SPSTA depth-adaptive grid-coarsening policy
	// (core.Analyzer.Coarsen); the zero value keeps every run on one
	// grid. Re-binning deviations are folded into the same consumed
	// budget certificate as pruning.
	Coarsen core.CoarsenPolicy
	// Obs, when non-nil, collects engine metrics from every analyzer
	// and Monte Carlo run the harness performs. All runs of one
	// harness invocation share the scope, so its snapshot aggregates
	// the whole experiment. Nil keeps the uninstrumented fast path.
	Obs *obs.Scope
}

func (cfg Config) runs() int {
	if cfg.MCRuns == 0 {
		return 10000
	}
	return cfg.MCRuns
}

func (cfg Config) circuits() ([]*netlist.Circuit, error) {
	names := cfg.Circuits
	if len(names) == 0 {
		for _, p := range synth.Profiles() {
			names = append(names, p.Name)
		}
	}
	var out []*netlist.Circuit
	for _, name := range names {
		p, ok := synth.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown circuit %q", name)
		}
		c, err := synth.Generate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Analysis bundles the three analyzers' results on one circuit, with
// wall-clock runtimes for Table 3.
type Analysis struct {
	Circuit   *netlist.Circuit
	SPSTA     *core.Result
	SSTA      *ssta.Result
	MC        *montecarlo.Result
	SPSTATime time.Duration
	SSTATime  time.Duration
	MCTime    time.Duration
}

// RunAll executes SPSTA, SSTA and Monte Carlo on every configured
// circuit under the scenario.
func RunAll(cfg Config, s Scenario) ([]Analysis, error) {
	circuits, err := cfg.circuits()
	if err != nil {
		return nil, err
	}
	var out []Analysis
	for _, c := range circuits {
		in := Inputs(c, s)
		a := Analysis{Circuit: c}

		t0 := time.Now()
		an := core.Analyzer{Workers: cfg.Workers, ErrorBudget: cfg.Epsilon, Coarsen: cfg.Coarsen, Obs: cfg.Obs}
		a.SPSTA, err = an.Run(c, in)
		if err != nil {
			return nil, fmt.Errorf("experiments: SPSTA on %s: %w", c.Name, err)
		}
		a.SPSTATime = time.Since(t0)

		t0 = time.Now()
		a.SSTA = ssta.Analyze(c, in, nil)
		a.SSTATime = time.Since(t0)

		t0 = time.Now()
		a.MC, err = montecarlo.Simulate(c, in, montecarlo.Config{Runs: cfg.runs(), Seed: cfg.Seed, Workers: cfg.Workers, Packed: cfg.Packed, Obs: cfg.Obs})
		if err != nil {
			return nil, fmt.Errorf("experiments: MC on %s: %w", c.Name, err)
		}
		a.MCTime = time.Since(t0)
		out = append(out, a)
	}
	return out, nil
}

// Table2Row is one line of the paper's Table 2: the critical-path
// endpoint's arrival statistics for one circuit and direction.
type Table2Row struct {
	Case string
	Dir  ssta.Dir

	SPSTAMu, SPSTASigma, SPSTAP float64
	SSTAMu, SSTASigma           float64
	MCMu, MCSigma, MCP          float64
}

// Table2Rows extracts the paper's Table 2 rows (rise rows for every
// circuit, then fall rows, matching the paper's layout).
func Table2Rows(analyses []Analysis) []Table2Row {
	var rows []Table2Row
	for _, d := range []ssta.Dir{ssta.DirRise, ssta.DirFall} {
		for _, a := range analyses {
			end := a.Circuit.CriticalEndpoint()
			mean, sigma, prob := a.SPSTA.Arrival(end, d)
			sst := a.SSTA.At(end, d)
			mc := a.MC.Arrival(end, d)
			v := logic.Rise
			if d == ssta.DirFall {
				v = logic.Fall
			}
			rows = append(rows, Table2Row{
				Case:       a.Circuit.Name,
				Dir:        d,
				SPSTAMu:    mean,
				SPSTASigma: sigma,
				SPSTAP:     prob,
				SSTAMu:     sst.Mu,
				SSTASigma:  sst.Sigma,
				MCMu:       mc.Mean(),
				MCSigma:    mc.Sigma(),
				MCP:        a.MC.P(end, v),
			})
		}
	}
	return rows
}

// WriteTable2 renders Table 2 in the paper's column layout.
func WriteTable2(w io.Writer, s Scenario, rows []Table2Row) error {
	t := report.Table{
		Title: fmt.Sprintf("Table 2 (%s): critical-path arrival statistics — SPSTA vs SSTA vs Monte Carlo", s),
		Headers: []string{"test", "", "SPSTA mu", "sigma", "P",
			"SSTA mu", "sigma", "MC mu", "sigma", "P"},
	}
	for _, r := range rows {
		dir := "r"
		if r.Dir == ssta.DirFall {
			dir = "f"
		}
		t.Add(r.Case, dir,
			report.F(r.SPSTAMu), report.F(r.SPSTASigma), report.F(r.SPSTAP),
			report.F(r.SSTAMu), report.F(r.SSTASigma),
			report.F(r.MCMu), report.F(r.MCSigma), report.F(r.MCP))
	}
	return t.Render(w)
}

// Summary aggregates the relative errors of SPSTA and SSTA against
// Monte Carlo over a set of Table 2 rows — the abstract's headline
// metric ("SPSTA computes mean (standard deviation) of signal
// arrival times within 6.2% (18.6%), SSTA within 13.40% (64.3%)").
type Summary struct {
	Rows int
	// Mean absolute relative errors vs Monte Carlo.
	SPSTAMuErr, SPSTASigmaErr float64
	SSTAMuErr, SSTASigmaErr   float64
	// Mean absolute error of SPSTA transition probability vs MC
	// (the paper's 14.28% signal probability metric), relative to
	// the MC probability.
	SPSTAPErr float64
}

// Summarize averages relative errors over rows with usable MC
// statistics (nonzero mean/sigma/P).
func Summarize(rows []Table2Row) Summary {
	var s Summary
	var nMu, nSigma, nP int
	for _, r := range rows {
		if r.MCMu != 0 {
			s.SPSTAMuErr += math.Abs(r.SPSTAMu-r.MCMu) / math.Abs(r.MCMu)
			s.SSTAMuErr += math.Abs(r.SSTAMu-r.MCMu) / math.Abs(r.MCMu)
			nMu++
		}
		if r.MCSigma > 0.05 {
			s.SPSTASigmaErr += math.Abs(r.SPSTASigma-r.MCSigma) / r.MCSigma
			s.SSTASigmaErr += math.Abs(r.SSTASigma-r.MCSigma) / r.MCSigma
			nSigma++
		}
		if r.MCP > 0.01 {
			s.SPSTAPErr += math.Abs(r.SPSTAP-r.MCP) / r.MCP
			nP++
		}
	}
	s.Rows = len(rows)
	if nMu > 0 {
		s.SPSTAMuErr /= float64(nMu)
		s.SSTAMuErr /= float64(nMu)
	}
	if nSigma > 0 {
		s.SPSTASigmaErr /= float64(nSigma)
		s.SSTASigmaErr /= float64(nSigma)
	}
	if nP > 0 {
		s.SPSTAPErr /= float64(nP)
	}
	return s
}

// WriteSummary renders the error summary.
func WriteSummary(w io.Writer, s Summary) error {
	t := report.Table{
		Title:   "Accuracy vs Monte Carlo (mean absolute relative error)",
		Headers: []string{"metric", "SPSTA", "SSTA"},
	}
	t.Add("arrival mean", report.Pct(s.SPSTAMuErr), report.Pct(s.SSTAMuErr))
	t.Add("arrival sigma", report.Pct(s.SPSTASigmaErr), report.Pct(s.SSTASigmaErr))
	t.Add("transition probability", report.Pct(s.SPSTAPErr), "n/a")
	return t.Render(w)
}

// Table3Row is one line of the paper's Table 3: analyzer runtimes.
type Table3Row struct {
	Case                    string
	SPSTA, SSTA, MonteCarlo time.Duration
}

// Table3Rows extracts the runtime rows.
func Table3Rows(analyses []Analysis) []Table3Row {
	var rows []Table3Row
	for _, a := range analyses {
		rows = append(rows, Table3Row{
			Case:       a.Circuit.Name,
			SPSTA:      a.SPSTATime,
			SSTA:       a.SSTATime,
			MonteCarlo: a.MCTime,
		})
	}
	return rows
}

// WriteTable3 renders Table 3.
func WriteTable3(w io.Writer, runs int, rows []Table3Row) error {
	t := report.Table{
		Title:   fmt.Sprintf("Table 3: CPU runtime — SPSTA, SSTA, %d-run Monte Carlo", runs),
		Headers: []string{"test", "SPSTA", "SSTA", "Monte Carlo", "MC/SPSTA"},
	}
	for _, r := range rows {
		ratio := "n/a"
		if r.SPSTA > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(r.MonteCarlo)/float64(r.SPSTA))
		}
		t.Add(r.Case, r.SPSTA.Round(time.Microsecond).String(),
			r.SSTA.Round(time.Microsecond).String(),
			r.MonteCarlo.Round(time.Microsecond).String(), ratio)
	}
	return t.Render(w)
}

// Fig1 reproduces Figure 1: on one circuit, the actual (Monte Carlo)
// critical-endpoint arrival distribution against the SSTA best/worst
// case normal curves and the STA ±3σ bounds.
func Fig1(w io.Writer, cfg Config, s Scenario) error {
	p, _ := synth.ProfileByName("s344")
	c, err := synth.Generate(p)
	if err != nil {
		return err
	}
	in := Inputs(c, s)
	end := c.CriticalEndpoint()

	mc, err := montecarlo.Simulate(c, in, montecarlo.Config{Runs: cfg.runs(), Seed: cfg.Seed, Workers: cfg.Workers, Packed: cfg.Packed, Obs: cfg.Obs})
	if err != nil {
		return err
	}
	sst := ssta.Analyze(c, in, nil)
	sta := ssta.AnalyzeSTA(c, in, nil, 3)

	grid := dist.TimingGrid(c.Depth(), 0, 1)
	an := core.Analyzer{Workers: cfg.Workers, ErrorBudget: cfg.Epsilon, Coarsen: cfg.Coarsen, Obs: cfg.Obs}
	an.Grid = grid
	spsta, err := an.Run(c, in)
	if err != nil {
		return err
	}
	// The moment-matched normal of the MC sample stands in for the
	// actual distribution curve, alongside the exact SPSTA t.o.p.
	mcArr := mc.Arrival(end, ssta.DirRise)
	actual := dist.Normal{Mu: mcArr.Mean(), Sigma: mcArr.Sigma()}
	late := sst.At(end, ssta.DirRise)
	early := minArrival(sst, c)
	bound := sta.At(end, ssta.DirRise)

	xs := make([]float64, grid.N)
	actualY := make([]float64, grid.N)
	spstaY := make([]float64, grid.N)
	lateY := make([]float64, grid.N)
	earlyY := make([]float64, grid.N)
	boundY := make([]float64, grid.N)
	top := spsta.TOP(end, ssta.DirRise).Clone()
	top.Normalize()
	for i := 0; i < grid.N; i++ {
		x := grid.X(i)
		xs[i] = x
		actualY[i] = actual.PDF(x)
		spstaY[i] = top.W(i) / grid.Dt
		lateY[i] = late.PDF(x)
		earlyY[i] = early.PDF(x)
		if x >= bound.Lo && x <= bound.Hi {
			boundY[i] = 0.02
		}
	}
	fmt.Fprintf(w, "Figure 1: %s critical endpoint (rise), scenario %s\n", c.Name, s)
	fmt.Fprintf(w, "STA bounds: [%.2f, %.2f]\n", bound.Lo, bound.Hi)
	return report.RenderSeries(w, "", xs, []report.Series{
		{Name: "actual(MC)", Y: actualY},
		{Name: "SPSTA t.o.p. (normalized)", Y: spstaY},
		{Name: "SSTA worst", Y: lateY},
		{Name: "SSTA best", Y: earlyY},
		{Name: "STA bound span", Y: boundY},
	}, 16)
}

// minArrival returns the earliest (best-case) SSTA arrival over the
// endpoints: the "best case timing distribution" of Figure 1.
func minArrival(r *ssta.Result, c *netlist.Circuit) dist.Normal {
	best := dist.Normal{Mu: math.Inf(1)}
	for _, id := range c.Endpoints() {
		for _, d := range []ssta.Dir{ssta.DirRise, ssta.DirFall} {
			if n := r.At(id, d); n.Mu < best.Mu {
				best = n
			}
		}
	}
	return best
}

// Fig2 reproduces Figure 2: the SUM and MAX operations on two
// normal arrival distributions.
func Fig2(w io.Writer) error {
	g := dist.NewGrid(-5, 9, 1.0/32)
	a := dist.Normal{Mu: 0, Sigma: 1}
	b := dist.Normal{Mu: 1, Sigma: 0.8}
	pa := dist.FromNormal(g, a)
	pb := dist.FromNormal(g, b)
	sum := pa.Convolve(pb)
	mx := dist.MaxPMF(pa, pb)
	xs := make([]float64, g.N)
	ya := make([]float64, g.N)
	yb := make([]float64, g.N)
	ys := make([]float64, g.N)
	ym := make([]float64, g.N)
	for i := 0; i < g.N; i++ {
		xs[i] = g.X(i)
		ya[i] = pa.W(i) / g.Dt
		yb[i] = pb.W(i) / g.Dt
		ys[i] = sum.W(i) / g.Dt
		ym[i] = mx.W(i) / g.Dt
	}
	fmt.Fprintf(w, "Figure 2: SUM and MAX of t1~N(0,1), t2~N(1,0.8)\n")
	fmt.Fprintf(w, "SUM: mu=%.3f sigma=%.3f   MAX: mu=%.3f sigma=%.3f (Clark: mu=%.3f sigma=%.3f)\n",
		sum.Mean(), sum.Sigma(), mx.Mean(), mx.Sigma(),
		dist.MaxNormal(a, b, 0).Mu, dist.MaxNormal(a, b, 0).Sigma)
	return report.RenderSeries(w, "", xs, []report.Series{
		{Name: "t1", Y: ya}, {Name: "t2", Y: yb},
		{Name: "SUM", Y: ys}, {Name: "MAX", Y: ym},
	}, 14)
}

// Fig3 reproduces Figure 3: signal probability and toggling rate
// through a two-input AND gate.
func Fig3(w io.Writer) error {
	p1, p2 := 0.5, 0.5
	rho1, rho2 := 0.5, 0.5
	py := power.GateProbability(logic.And, []float64{p1, p2})
	rho := power.DiffProbability(logic.And, []float64{p1, p2}, 0)*rho1 +
		power.DiffProbability(logic.And, []float64{p1, p2}, 1)*rho2
	t := report.Table{
		Title:   "Figure 3: signal probability and toggling rate, y = AND(x1, x2)",
		Headers: []string{"net", "P(1)", "toggling rate"},
	}
	t.Add("x1", report.F3(p1), report.F3(rho1))
	t.Add("x2", report.F3(p2), report.F3(rho2))
	t.Add("y", report.F3(py), report.F3(rho))
	return t.Render(w)
}

// Fig4 reproduces Figure 4: the MAX operation versus the WEIGHTED
// SUM operation for a two-input AND gate whose inputs both have 0.9
// signal probability and same-mean, different-sigma arrivals.
func Fig4(w io.Writer) error {
	g := dist.NewGrid(-8, 8, 1.0/32)
	// 0.9 signal probability decomposed as 0.8 constant one + 0.1
	// rising; arrivals N(0,1) and N(0,2).
	top1 := dist.FromNormal(g, dist.Normal{Mu: 0, Sigma: 1}).Scale(0.1)
	top2 := dist.FromNormal(g, dist.Normal{Mu: 0, Sigma: 2}).Scale(0.1)
	ws := dist.MaxMixture(g, []dist.SwitchInput{
		{Stay: 0.8, TOP: top1},
		{Stay: 0.8, TOP: top2},
	})
	wsn := ws.Clone()
	wsn.Normalize()
	a1 := top1.Clone()
	a1.Normalize()
	a2 := top2.Clone()
	a2.Normalize()
	mx := dist.MaxPMF(a1, a2)

	xs := make([]float64, g.N)
	y1 := make([]float64, g.N)
	y2 := make([]float64, g.N)
	ym := make([]float64, g.N)
	yw := make([]float64, g.N)
	for i := 0; i < g.N; i++ {
		xs[i] = g.X(i)
		y1[i] = a1.W(i) / g.Dt
		y2[i] = a2.W(i) / g.Dt
		ym[i] = mx.W(i) / g.Dt
		yw[i] = wsn.W(i) / g.Dt
	}
	fmt.Fprintf(w, "Figure 4: MAX vs WEIGHTED SUM, AND gate, P(one)=0.9 per input\n")
	fmt.Fprintf(w, "MAX: mu=%.3f sigma=%.3f skew>0   WEIGHTED SUM: mass=%.3f mu=%.3f sigma=%.3f\n",
		mx.Mean(), mx.Sigma(), ws.Mass(), ws.Mean(), ws.Sigma())
	return report.RenderSeries(w, "", xs, []report.Series{
		{Name: "t1 pdf", Y: y1}, {Name: "t2 pdf", Y: y2},
		{Name: "MAX", Y: ym}, {Name: "WEIGHTED SUM (normalized)", Y: yw},
	}, 14)
}
