package obs

import (
	_ "unsafe" // for go:linkname
)

// Nanotime returns the runtime's monotonic clock reading. It is the
// clock the metrics-only hot path uses for per-gate busy-time
// attribution: roughly a third the cost of a time.Now/time.Since
// pair, which matters at one reading pair per gate. Tracer spans
// still use time.Now, because trace_event timestamps need a wall
// epoch; tracing is explicitly the heavier mode.
//
//go:linkname Nanotime runtime.nanotime
func Nanotime() int64
