package netlist

import (
	"regexp"
	"testing"

	"repro/internal/logic"
)

// digestCircuit builds a small frozen circuit for digest tests.
// rename swaps one net name; retype swaps one gate type.
func digestCircuit(t *testing.T, name string, retype bool) *Circuit {
	t.Helper()
	c := New(name)
	mustAdd := func(n string, g logic.GateType, fanin ...string) {
		if _, err := c.AddNode(n, g, fanin...); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("a", logic.Input)
	mustAdd("b", logic.Input)
	g := logic.And
	if retype {
		g = logic.Or
	}
	mustAdd("g1", g, "a", "b")
	mustAdd("g2", logic.Not, "g1")
	c.MarkOutput("g2")
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDigestStableAndNameIndependent(t *testing.T) {
	c1 := digestCircuit(t, "left", false)
	c2 := digestCircuit(t, "right", false)
	d1, d2 := Digest(c1, nil), Digest(c2, nil)
	if d1 != d2 {
		t.Errorf("digest depends on the circuit's display name: %s vs %s", d1, d2)
	}
	if d1 != Digest(c1, nil) {
		t.Error("digest is not deterministic across calls")
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(d1) {
		t.Errorf("digest %q is not 64 lowercase hex chars", d1)
	}
}

func TestDigestSeesStructure(t *testing.T) {
	base := Digest(digestCircuit(t, "c", false), nil)
	if got := Digest(digestCircuit(t, "c", true), nil); got == base {
		t.Error("changing a gate type did not change the digest")
	}

	// Net names are content: delta edits and endpoint reports refer to
	// nets by name, so a rename is a different netlist.
	c := New("c")
	for _, n := range []struct {
		name  string
		g     logic.GateType
		fanin []string
	}{
		{"a", logic.Input, nil}, {"b", logic.Input, nil},
		{"x1", logic.And, []string{"a", "b"}}, {"g2", logic.Not, []string{"x1"}},
	} {
		if _, err := c.AddNode(n.name, n.g, n.fanin...); err != nil {
			t.Fatal(err)
		}
	}
	c.MarkOutput("g2")
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	if got := Digest(c, nil); got == base {
		t.Error("renaming a net did not change the digest")
	}
}

func TestDigestSeesInputs(t *testing.T) {
	c := digestCircuit(t, "c", false)
	structOnly := Digest(c, nil)
	a, _ := c.Node("a")
	b, _ := c.Node("b")
	in := map[NodeID]logic.InputStats{
		a.ID: logic.UniformStats(),
		b.ID: logic.UniformStats(),
	}
	withIn := Digest(c, in)
	if withIn == structOnly {
		t.Error("input stats did not change the digest")
	}
	// Map iteration order must not matter.
	if got := Digest(c, in); got != withIn {
		t.Error("digest with inputs is not deterministic")
	}
	in[b.ID] = logic.SkewedStats()
	if got := Digest(c, in); got == withIn {
		t.Error("changing one launch point's stats did not change the digest")
	}
}
