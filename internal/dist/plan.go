package dist

import (
	"math"
	"sync"

	"repro/internal/obs"
)

// fftPlan precomputes the data-independent part of a radix-2 FFT of
// one size: the bit-reversal permutation and every stage's twiddle
// factors. The butterfly loop then runs with two table loads where it
// used to call math.Sincos per frequency index, and the tables are
// shared by every transform of the run — the forward and inverse
// transforms of one convolution, both directions of a gate, and every
// net of a batched level.
//
// The stored values are exactly the ones the un-planned kernel
// computed: wr[k] = cos(−π·j/h), wi[k] = sin(−π·j/h) via one
// math.Sincos call at plan-build time. The inverse transform needs
// sin(+π·j/h) = −wi[k] (IEEE negation is exact), so one table serves
// both directions and planned transforms are bit-identical to the
// historical per-call Sincos kernel.
type fftPlan struct {
	n   int
	rev []int32 // rev[i] = bit-reversed index of i
	// wr/wi hold the forward twiddles of every stage concatenated:
	// the stage with half-size h (h = 1, 2, …, n/2) occupies
	// [h−1, 2h−1), so the whole table has n−1 entries.
	wr, wi []float64
}

// fftPlans caches plans by transform size for the process lifetime.
// Plans are immutable once built and a few KB each (sizes are powers
// of two up to ~2·grid bins), so a global cache strictly dominates a
// per-run one; the per-run hit/miss counters still ride on the
// grid's metrics handle.
var fftPlans sync.Map // int → *fftPlan

// planFFT returns the (possibly cached) plan for size n, recording a
// hit or miss on m.
func planFFT(n int, m *obs.Metrics) *fftPlan {
	if v, ok := fftPlans.Load(n); ok {
		if m != nil {
			m.FFTPlanHits.Add(1)
		}
		return v.(*fftPlan)
	}
	if m != nil {
		m.FFTPlanMisses.Add(1)
	}
	p := newFFTPlan(n)
	if v, loaded := fftPlans.LoadOrStore(n, p); loaded {
		return v.(*fftPlan)
	}
	return p
}

func newFFTPlan(n int) *fftPlan {
	p := &fftPlan{n: n, rev: make([]int32, n)}
	if n < 2 {
		return p
	}
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		p.rev[i] = int32(j)
	}
	p.wr = make([]float64, n-1)
	p.wi = make([]float64, n-1)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := -math.Pi / float64(half)
		off := half - 1
		for j := 0; j < half; j++ {
			wi, wr := math.Sincos(ang * float64(j))
			p.wr[off+j] = wr
			p.wi[off+j] = wi
		}
	}
	return p
}
