// RED metrics for the spstad service: request rate, error count and
// latency histograms per engine, plus worker-pool gauges and the
// accuracy-drift monitor's deviation gauges. The registry is a fixed
// set of atomics — no dependency beyond the standard library — and
// renders itself in the Prometheus text exposition format, including
// a summary of the merged per-request engine scopes.
package service

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Engines accepted by the analyze endpoint, in label order. The extra
// "compare" label counts /v1/compare requests, which always run the
// spsta and mc engines as a pair, and "delta" counts /v1/delta
// incremental requests.
var engineLabels = []string{"spsta", "moment", "mc", "all", "compare", "delta"}

// numEngineLabels sizes the per-engine atomics arrays.
const numEngineLabels = 6

func engineIndex(engine string) int {
	for i, l := range engineLabels {
		if l == engine {
			return i
		}
	}
	return -1
}

// latencyBounds are the histogram upper bounds in seconds. Fixed
// buckets keep observation lock-free: one atomic add per request.
var latencyBounds = [...]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// latencyHist is a fixed-bucket latency histogram; buckets[i] counts
// observations in (bounds[i-1], bounds[i]], the last bucket is +Inf.
type latencyHist struct {
	buckets [len(latencyBounds) + 1]atomic.Int64
	sumNS   atomic.Int64
	count   atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNS.Add(d.Nanoseconds())
	h.count.Add(1)
}

// costBounds are the request cost histogram's upper bounds in work
// units (DESIGN.md §14): decades covering a trivial inline netlist
// (~1e3) through a 10M-run Monte Carlo sweep (~1e10).
var costBounds = [...]float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// costHist is a fixed-bucket work-unit histogram, same lock-free
// shape as latencyHist.
type costHist struct {
	buckets [len(costBounds) + 1]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

func (h *costHist) observe(units int64) {
	v := float64(units)
	i := 0
	for i < len(costBounds) && v > costBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(units)
	h.count.Add(1)
}

// atomicFloat is a float64 gauge stored as bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// registry is the service-level metrics store.
type registry struct {
	requests [numEngineLabels]atomic.Int64
	errors   [numEngineLabels]atomic.Int64
	latency  [numEngineLabels]latencyHist

	queueDepth atomic.Int64
	inflight   atomic.Int64
	rejected   atomic.Int64

	// Result-cache, single-flight, netlist-registry and delta
	// counters; the resultCache / netRegistry update these directly so
	// /metrics has a single source of truth.
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheEvictions     atomic.Int64
	cacheBytes         atomic.Int64
	singleflightShared atomic.Int64
	registryEntries    atomic.Int64
	registryEvictions  atomic.Int64
	deltaNets          atomic.Int64

	// cost observes each successful request's total work-unit cost.
	cost costHist

	driftSamples  atomic.Int64
	driftMeanDev  atomicFloat
	driftSigmaDev atomicFloat

	// agg accumulates the per-request engine scopes: every request's
	// snapshot is merged in after it completes, so /metrics exposes
	// lifetime engine totals next to the RED series.
	aggMu sync.Mutex
	agg   obs.Snapshot
}

// observe records one finished request for the engine label.
func (r *registry) observe(engine string, d time.Duration, failed bool) {
	i := engineIndex(engine)
	if i < 0 {
		return
	}
	r.requests[i].Add(1)
	if failed {
		r.errors[i].Add(1)
	}
	r.latency[i].observe(d)
}

// merge folds a finished request's engine-scope snapshot into the
// lifetime aggregate.
func (r *registry) merge(s *obs.Snapshot) {
	if s == nil {
		return
	}
	r.aggMu.Lock()
	r.agg.Merge(s)
	r.aggMu.Unlock()
}

// writePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *registry) writePrometheus(w io.Writer) {
	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("spstad_requests_total", "Requests served, by engine.")
	for i, l := range engineLabels {
		fmt.Fprintf(w, "spstad_requests_total{engine=%q} %d\n", l, r.requests[i].Load())
	}
	counter("spstad_request_errors_total", "Requests that failed, by engine.")
	for i, l := range engineLabels {
		fmt.Fprintf(w, "spstad_request_errors_total{engine=%q} %d\n", l, r.errors[i].Load())
	}

	fmt.Fprintf(w, "# HELP spstad_request_duration_seconds Request latency, by engine.\n")
	fmt.Fprintf(w, "# TYPE spstad_request_duration_seconds histogram\n")
	for i, l := range engineLabels {
		h := &r.latency[i]
		if h.count.Load() == 0 {
			continue
		}
		cum := int64(0)
		for b, bound := range latencyBounds {
			cum += h.buckets[b].Load()
			fmt.Fprintf(w, "spstad_request_duration_seconds_bucket{engine=%q,le=%q} %d\n", l, trimFloat(bound), cum)
		}
		cum += h.buckets[len(latencyBounds)].Load()
		fmt.Fprintf(w, "spstad_request_duration_seconds_bucket{engine=%q,le=\"+Inf\"} %d\n", l, cum)
		fmt.Fprintf(w, "spstad_request_duration_seconds_sum{engine=%q} %g\n", l, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "spstad_request_duration_seconds_count{engine=%q} %d\n", l, h.count.Load())
	}

	fmt.Fprintf(w, "# HELP spstad_request_cost_units Deterministic work-unit cost per successful request (DESIGN.md §14).\n")
	fmt.Fprintf(w, "# TYPE spstad_request_cost_units histogram\n")
	{
		cum := int64(0)
		for b, bound := range costBounds {
			cum += r.cost.buckets[b].Load()
			fmt.Fprintf(w, "spstad_request_cost_units_bucket{le=%q} %d\n", trimFloat(bound), cum)
		}
		cum += r.cost.buckets[len(costBounds)].Load()
		fmt.Fprintf(w, "spstad_request_cost_units_bucket{le=\"+Inf\"} %d\n", cum)
		fmt.Fprintf(w, "spstad_request_cost_units_sum %d\n", r.cost.sum.Load())
		fmt.Fprintf(w, "spstad_request_cost_units_count %d\n", r.cost.count.Load())
	}

	gauge("spstad_queue_depth", "Requests waiting for a worker slot.")
	fmt.Fprintf(w, "spstad_queue_depth %d\n", r.queueDepth.Load())
	gauge("spstad_inflight_requests", "Requests currently being analyzed.")
	fmt.Fprintf(w, "spstad_inflight_requests %d\n", r.inflight.Load())
	counter("spstad_requests_rejected_total", "Requests rejected because the queue was full or the service was shutting down.")
	fmt.Fprintf(w, "spstad_requests_rejected_total %d\n", r.rejected.Load())

	counter("spstad_cache_hits_total", "Engine results served from the content-addressed result cache.")
	fmt.Fprintf(w, "spstad_cache_hits_total %d\n", r.cacheHits.Load())
	counter("spstad_cache_misses_total", "Engine runs the result cache could not serve.")
	fmt.Fprintf(w, "spstad_cache_misses_total %d\n", r.cacheMisses.Load())
	counter("spstad_cache_evictions_total", "Results evicted from the result cache (size or TTL).")
	fmt.Fprintf(w, "spstad_cache_evictions_total %d\n", r.cacheEvictions.Load())
	gauge("spstad_cache_bytes", "Estimated bytes held by the result cache.")
	fmt.Fprintf(w, "spstad_cache_bytes %d\n", r.cacheBytes.Load())
	counter("spstad_singleflight_shared_total", "Requests that shared a concurrent identical engine run instead of starting their own.")
	fmt.Fprintf(w, "spstad_singleflight_shared_total %d\n", r.singleflightShared.Load())
	gauge("spstad_registry_entries", "Netlists currently held by the registry.")
	fmt.Fprintf(w, "spstad_registry_entries %d\n", r.registryEntries.Load())
	counter("spstad_registry_evictions_total", "Netlists evicted from the registry.")
	fmt.Fprintf(w, "spstad_registry_evictions_total %d\n", r.registryEvictions.Load())
	counter("spstad_delta_nets_recomputed_total", "Node recomputations performed by /v1/delta reconciliations.")
	fmt.Fprintf(w, "spstad_delta_nets_recomputed_total %d\n", r.deltaNets.Load())

	counter("spstad_drift_samples_total", "Accuracy-drift monitor replays performed.")
	fmt.Fprintf(w, "spstad_drift_samples_total %d\n", r.driftSamples.Load())
	gauge("spstad_drift_mean_deviation", "Absolute mean arrival-time deviation, SPSTA vs packed Monte Carlo, at the last replayed request's critical endpoint.")
	fmt.Fprintf(w, "spstad_drift_mean_deviation %g\n", r.driftMeanDev.Load())
	gauge("spstad_drift_sigma_deviation", "Absolute arrival-time sigma deviation, SPSTA vs packed Monte Carlo, at the last replayed request's critical endpoint.")
	fmt.Fprintf(w, "spstad_drift_sigma_deviation %g\n", r.driftSigmaDev.Load())

	r.aggMu.Lock()
	agg := r.agg
	gates := int64(0)
	for _, ws := range r.agg.Workers {
		gates += ws.Gates
	}
	r.aggMu.Unlock()

	counter("spstad_engine_kernel_cache_hits_total", "Delay-kernel cache hits across all requests.")
	fmt.Fprintf(w, "spstad_engine_kernel_cache_hits_total %d\n", agg.KernelCache.Hits)
	counter("spstad_engine_kernel_cache_misses_total", "Delay-kernel cache misses across all requests.")
	fmt.Fprintf(w, "spstad_engine_kernel_cache_misses_total %d\n", agg.KernelCache.Misses)
	counter("spstad_engine_convolutions_total", "PMF convolutions across all requests, by method.")
	fmt.Fprintf(w, "spstad_engine_convolutions_total{method=\"direct\"} %d\n", agg.Convolution.Direct)
	fmt.Fprintf(w, "spstad_engine_convolutions_total{method=\"fft\"} %d\n", agg.Convolution.FFT)
	counter("spstad_engine_gates_total", "Gates evaluated by the level-parallel schedule across all requests.")
	fmt.Fprintf(w, "spstad_engine_gates_total %d\n", gates)
	counter("spstad_engine_mc_runs_total", "Monte Carlo runs simulated across all requests.")
	fmt.Fprintf(w, "spstad_engine_mc_runs_total %d\n", agg.MonteCarloRuns)
	counter("spstad_engine_mc_packed_blocks_total", "Word-packed Monte Carlo blocks across all requests.")
	fmt.Fprintf(w, "spstad_engine_mc_packed_blocks_total %d\n", agg.MonteCarloPacked.Blocks)
	gauge("spstad_engine_pruned_mass", "Probability mass pruned by the adaptive engine across all requests.")
	fmt.Fprintf(w, "spstad_engine_pruned_mass %g\n", agg.Pruning.PrunedMass)

	// Batched-scheduler counters (DESIGN.md §13). The nets histogram
	// is summarized as levels dispatched plus a lower bound on staged
	// nets, mirroring the spsta CLI footer.
	var batchLevels, batchNets int64
	for _, bk := range agg.Batch.NetsHist {
		batchLevels += bk.Count
		batchNets += bk.Count * int64(bk.Lo)
	}
	counter("spstad_engine_batch_levels_total", "Levels dispatched to the batched same-level kernels across all requests.")
	fmt.Fprintf(w, "spstad_engine_batch_levels_total %d\n", batchLevels)
	counter("spstad_engine_batch_nets_total", "Nets staged through batch slabs across all requests (histogram lower bound).")
	fmt.Fprintf(w, "spstad_engine_batch_nets_total %d\n", batchNets)
	counter("spstad_engine_fft_plans_total", "FFT plan-cache lookups across all requests, by result.")
	fmt.Fprintf(w, "spstad_engine_fft_plans_total{result=\"hit\"} %d\n", agg.Batch.FFTPlanHits)
	fmt.Fprintf(w, "spstad_engine_fft_plans_total{result=\"miss\"} %d\n", agg.Batch.FFTPlanMisses)
	counter("spstad_engine_slab_bytes_reused_total", "Slab backing bytes served from the recycle pool across all requests.")
	fmt.Fprintf(w, "spstad_engine_slab_bytes_reused_total %d\n", agg.Batch.SlabBytesReused)
	counter("spstad_engine_conv_plans_total", "Per-grid convolution plan-cache lookups across all requests, by result.")
	fmt.Fprintf(w, "spstad_engine_conv_plans_total{result=\"hit\"} %d\n", agg.Batch.ConvPlanHits)
	fmt.Fprintf(w, "spstad_engine_conv_plans_total{result=\"miss\"} %d\n", agg.Batch.ConvPlanMisses)

	// Depth-adaptive grid-coarsening counters (DESIGN.md §15).
	counter("spstad_engine_rebin_calls_total", "PMF re-binning kernel invocations across all requests.")
	fmt.Fprintf(w, "spstad_engine_rebin_calls_total %d\n", agg.Grid.RebinCalls)
	counter("spstad_engine_rebin_levels_total", "Level boundaries at which a run stepped to a coarser grid, across all requests.")
	fmt.Fprintf(w, "spstad_engine_rebin_levels_total %d\n", agg.Grid.RebinLevels)
	counter("spstad_engine_rebin_deviation_total", "Certified re-binning deviation folded into consumed budgets across all requests.")
	fmt.Fprintf(w, "spstad_engine_rebin_deviation_total %g\n", agg.Grid.RebinDeviation)
	fmt.Fprintf(w, "# HELP spstad_engine_grid_bins_per_level Grid resolution (bins) each scheduled level ran at, across all requests.\n")
	fmt.Fprintf(w, "# TYPE spstad_engine_grid_bins_per_level histogram\n")
	if len(agg.Grid.BinsPerLevelHist) > 0 {
		cum := int64(0)
		for _, bk := range agg.Grid.BinsPerLevelHist {
			cum += bk.Count
			fmt.Fprintf(w, "spstad_engine_grid_bins_per_level_bucket{le=%q} %d\n", trimFloat(float64(bk.Hi)), cum)
		}
		fmt.Fprintf(w, "spstad_engine_grid_bins_per_level_bucket{le=\"+Inf\"} %d\n", cum)
		fmt.Fprintf(w, "spstad_engine_grid_bins_per_level_count %d\n", cum)
	}
	gauge("spstad_engine_support_width_peak_bins", "Widest t.o.p. support (bins) observed by any request.")
	fmt.Fprintf(w, "spstad_engine_support_width_peak_bins %d\n", agg.Grid.SupportWidthPeak)
	gauge("spstad_engine_slab_bytes_peak", "Largest live slab allocation (bytes) observed by any request.")
	fmt.Fprintf(w, "spstad_engine_slab_bytes_peak %d\n", agg.Grid.SlabBytesPeak)

	counter("spstad_engine_cost_units_total", "Work units accumulated across all requests, by kind (DESIGN.md §14).")
	fmt.Fprintf(w, "spstad_engine_cost_units_total{kind=\"bin_ops\"} %d\n", agg.Cost.BinOps)
	fmt.Fprintf(w, "spstad_engine_cost_units_total{kind=\"mixture_ops\"} %d\n", agg.Cost.MixtureOps)
	fmt.Fprintf(w, "spstad_engine_cost_units_total{kind=\"leaf_ops\"} %d\n", agg.Cost.LeafOps)
	fmt.Fprintf(w, "spstad_engine_cost_units_total{kind=\"mc_ops\"} %d\n", agg.Cost.MCOps)

	// Process runtime gauges, prefixed go_ per client_golang convention.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("go_goroutines", "Number of goroutines that currently exist.")
	fmt.Fprintf(w, "go_goroutines %d\n", runtime.NumGoroutine())
	gauge("go_memstats_heap_inuse_bytes", "Heap bytes in in-use spans.")
	fmt.Fprintf(w, "go_memstats_heap_inuse_bytes %d\n", ms.HeapInuse)
	counter("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.")
	fmt.Fprintf(w, "go_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
}

// trimFloat formats a histogram bound the way Prometheus clients
// expect: no trailing zeros, no exponent for these magnitudes.
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
