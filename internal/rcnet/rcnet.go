// Package rcnet implements the interconnect-delay substrate the
// paper's background builds on (references [3, 9, 10, 17]): RC-tree
// Elmore delay computation, first-order sensitivity analysis of the
// Elmore delay to wire width/thickness perturbations (the
// sensitivity-based variational delay metric of [3]), and adapters
// that turn per-gate RC loads into the DelayModel the timing
// analyzers consume.
package rcnet

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/netlist"
	"repro/internal/ssta"
)

// Tree is an RC tree: node 0 is the root (driver output); every
// other node has a single resistive parent edge and a capacitance to
// ground. Sinks are the nodes observed by receivers.
type Tree struct {
	// Parent[i] is the parent node of i (Parent[0] is ignored).
	Parent []int
	// R[i] is the resistance of the edge from Parent[i] to i, in
	// consistent units (Parent/R/C indices align; R[0] is the
	// driver resistance).
	R []float64
	// C[i] is the capacitance at node i.
	C []float64

	order []int // nodes in parent-before-child order
}

// NewTree validates and prepares an RC tree. parent[0] must be -1
// (root); every other parent index must be smaller than its child
// (topological numbering).
func NewTree(parent []int, r, c []float64) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, fmt.Errorf("rcnet: empty tree")
	}
	if len(r) != n || len(c) != n {
		return nil, fmt.Errorf("rcnet: parent/R/C lengths %d/%d/%d", n, len(r), len(c))
	}
	if parent[0] != -1 {
		return nil, fmt.Errorf("rcnet: node 0 must be the root (parent -1)")
	}
	for i := 1; i < n; i++ {
		if parent[i] < 0 || parent[i] >= i {
			return nil, fmt.Errorf("rcnet: node %d has parent %d (want topological numbering)", i, parent[i])
		}
	}
	for i := 0; i < n; i++ {
		if r[i] < 0 || c[i] < 0 {
			return nil, fmt.Errorf("rcnet: negative R or C at node %d", i)
		}
	}
	t := &Tree{Parent: parent, R: r, C: c}
	t.order = make([]int, n)
	for i := range t.order {
		t.order[i] = i
	}
	return t, nil
}

// Elmore returns the Elmore delay from the root to every node:
// T_i = Σ_k R_k · C_downstream(k) over the root-to-i path, the
// classic first moment of the impulse response. Computed in two
// linear passes: downstream capacitance bottom-up, then path
// accumulation top-down.
func (t *Tree) Elmore() []float64 {
	n := len(t.Parent)
	cdown := append([]float64(nil), t.C...)
	for i := n - 1; i >= 1; i-- {
		cdown[t.Parent[i]] += cdown[i]
	}
	delay := make([]float64, n)
	delay[0] = t.R[0] * cdown[0]
	for i := 1; i < n; i++ {
		delay[i] = delay[t.Parent[i]] + t.R[i]*cdown[i]
	}
	return delay
}

// ElmoreTo returns the Elmore delay to one sink.
func (t *Tree) ElmoreTo(sink int) (float64, error) {
	if sink < 0 || sink >= len(t.Parent) {
		return 0, fmt.Errorf("rcnet: sink %d out of range", sink)
	}
	return t.Elmore()[sink], nil
}

// Sensitivities returns the partial derivatives of the Elmore delay
// at sink with respect to every edge resistance and node
// capacitance:
//
//	∂T/∂R_k = C_downstream(k)          if k is on the root-sink path
//	∂T/∂C_k = R_common(path, root→k)   (shared path resistance)
//
// — the sensitivity-based variational interconnect metric of [3].
func (t *Tree) Sensitivities(sink int) (dR, dC []float64, err error) {
	n := len(t.Parent)
	if sink < 0 || sink >= n {
		return nil, nil, fmt.Errorf("rcnet: sink %d out of range", sink)
	}
	// Downstream capacitance per node.
	cdown := append([]float64(nil), t.C...)
	for i := n - 1; i >= 1; i-- {
		cdown[t.Parent[i]] += cdown[i]
	}
	// Path membership: nodes on root→sink path.
	onPath := make([]bool, n)
	for i := sink; i != -1; i = t.Parent[i] {
		onPath[i] = true
		if i == 0 {
			break
		}
	}
	dR = make([]float64, n)
	for k := 0; k < n; k++ {
		if onPath[k] {
			dR[k] = cdown[k]
		}
	}
	// Shared resistance: accumulate down the tree; R_common(k) is
	// the resistance of the path prefix shared between root→sink
	// and root→k.
	shared := make([]float64, n)
	if onPath[0] {
		shared[0] = t.R[0]
	}
	for i := 1; i < n; i++ {
		p := t.Parent[i]
		shared[i] = shared[p]
		if onPath[i] {
			shared[i] += t.R[i]
		}
	}
	// For a node k off the path, the shared prefix ends at its
	// deepest on-path ancestor; the recurrence above already stops
	// adding once the path is left.
	dC = shared
	return dR, dC, nil
}

// VariationalDelay returns the Elmore delay to sink as a normal
// distribution when every resistance and capacitance varies
// independently by the given relative sigmas (first-order
// sensitivity propagation): mean = nominal Elmore, variance =
// Σ (∂T/∂R_k · σR·R_k)² + Σ (∂T/∂C_k · σC·C_k)².
func (t *Tree) VariationalDelay(sink int, sigmaR, sigmaC float64) (dist.Normal, error) {
	nom, err := t.ElmoreTo(sink)
	if err != nil {
		return dist.Normal{}, err
	}
	dR, dC, err := t.Sensitivities(sink)
	if err != nil {
		return dist.Normal{}, err
	}
	v := 0.0
	for k := range dR {
		v += sq(dR[k] * sigmaR * t.R[k])
		v += sq(dC[k] * sigmaC * t.C[k])
	}
	return dist.Normal{Mu: nom, Sigma: math.Sqrt(v)}, nil
}

func sq(x float64) float64 { return x * x }

// Line builds a uniform distributed RC line with the given number of
// segments, total resistance and total capacitance, plus a driver
// resistance and sink load capacitance. The classic result
// T ≈ Rd·(C+CL) + R·C/2 + R·CL emerges as segments grow.
func Line(segments int, rDriver, rTotal, cTotal, cLoad float64) (*Tree, error) {
	if segments < 1 {
		return nil, fmt.Errorf("rcnet: %d segments", segments)
	}
	n := segments + 1
	parent := make([]int, n)
	r := make([]float64, n)
	c := make([]float64, n)
	parent[0] = -1
	r[0] = rDriver
	c[0] = cTotal / float64(2*segments) // half-segment at the driver
	for i := 1; i < n; i++ {
		parent[i] = i - 1
		r[i] = rTotal / float64(segments)
		c[i] = cTotal / float64(segments)
		if i == n-1 {
			c[i] = cTotal/float64(2*segments) + cLoad
		}
	}
	return NewTree(parent, r, c)
}

// GateDelayModel adapts per-gate RC loads into the analyzers'
// DelayModel: each gate's delay is intrinsic plus the variational
// Elmore delay of its output net's RC tree to the given sink.
// Gates without an entry fall back to the base model (ssta.UnitDelay
// when base is nil).
func GateDelayModel(loads map[netlist.NodeID]Load, base ssta.DelayModel) ssta.DelayModel {
	if base == nil {
		base = ssta.UnitDelay
	}
	return func(n *netlist.Node) dist.Normal {
		l, ok := loads[n.ID]
		if !ok {
			return base(n)
		}
		d, err := l.Tree.VariationalDelay(l.Sink, l.SigmaR, l.SigmaC)
		if err != nil {
			return base(n)
		}
		return dist.Normal{Mu: l.Intrinsic + d.Mu, Sigma: d.Sigma}
	}
}

// Load describes one gate's output RC network for GateDelayModel.
type Load struct {
	Tree           *Tree
	Sink           int
	Intrinsic      float64
	SigmaR, SigmaC float64
}
