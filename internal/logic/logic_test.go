package logic

import (
	"testing"
	"testing/quick"
)

func TestValueEdges(t *testing.T) {
	cases := []struct {
		v              Value
		initial, final bool
	}{
		{Zero, false, false},
		{One, true, true},
		{Rise, false, true},
		{Fall, true, false},
	}
	for _, c := range cases {
		if got := c.v.Initial(); got != c.initial {
			t.Errorf("%v.Initial() = %v, want %v", c.v, got, c.initial)
		}
		if got := c.v.Final(); got != c.final {
			t.Errorf("%v.Final() = %v, want %v", c.v, got, c.final)
		}
		if got := FromEdge(c.initial, c.final); got != c.v {
			t.Errorf("FromEdge(%v,%v) = %v, want %v", c.initial, c.final, got, c.v)
		}
		if got := c.v.Switching(); got != (c.initial != c.final) {
			t.Errorf("%v.Switching() = %v", c.v, got)
		}
	}
}

func TestValueInvertInvolution(t *testing.T) {
	for v := Zero; v < NumValues; v++ {
		if got := v.Invert().Invert(); got != v {
			t.Errorf("double inversion of %v gives %v", v, got)
		}
		if v.Invert().Initial() == v.Initial() {
			t.Errorf("%v.Invert() keeps initial value", v)
		}
	}
}

func TestValueStrings(t *testing.T) {
	want := map[Value]string{Zero: "0", One: "1", Rise: "r", Fall: "f"}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
	if Value(9).String() == "" {
		t.Error("out-of-range Value has empty String")
	}
}

// TestPaperTable1AND checks the four-value AND table from the paper
// (Table 1), including the glitch-filtering entries r*f = 0.
func TestPaperTable1AND(t *testing.T) {
	want := [4][4]Value{
		//         0     1     r     f
		/* 0 */ {Zero, Zero, Zero, Zero},
		/* 1 */ {Zero, One, Rise, Fall},
		/* r */ {Zero, Rise, Rise, Zero},
		/* f */ {Zero, Fall, Zero, Fall},
	}
	for a := Zero; a < NumValues; a++ {
		for b := Zero; b < NumValues; b++ {
			if got := And.Eval([]Value{a, b}); got != want[a][b] {
				t.Errorf("AND(%v,%v) = %v, want %v", a, b, got, want[a][b])
			}
		}
	}
}

// TestPaperTable1OR checks the four-value OR table from the paper
// (Table 1), including the glitch-filtering entries r*f = 1.
func TestPaperTable1OR(t *testing.T) {
	want := [4][4]Value{
		//         0     1     r     f
		/* 0 */ {Zero, One, Rise, Fall},
		/* 1 */ {One, One, One, One},
		/* r */ {Rise, One, Rise, One},
		/* f */ {Fall, One, One, Fall},
	}
	for a := Zero; a < NumValues; a++ {
		for b := Zero; b < NumValues; b++ {
			if got := Or.Eval([]Value{a, b}); got != want[a][b] {
				t.Errorf("OR(%v,%v) = %v, want %v", a, b, got, want[a][b])
			}
		}
	}
}

func TestInvertingGatesMatchComplement(t *testing.T) {
	pairs := []struct{ g, base GateType }{
		{Nand, And}, {Nor, Or}, {Xnor, Xor}, {Not, Buf},
	}
	for _, p := range pairs {
		n := 2
		if p.g == Not {
			n = 1
		}
		forEachValueCombo(n, func(in []Value) {
			if got, want := p.g.Eval(in), p.base.Eval(in).Invert(); got != want {
				t.Errorf("%v%v = %v, want %v (complement of %v)", p.g, in, got, want, p.base)
			}
		})
	}
}

func TestEvalBoolTables(t *testing.T) {
	cases := []struct {
		g    GateType
		in   []bool
		want bool
	}{
		{And, []bool{true, true, true}, true},
		{And, []bool{true, false, true}, false},
		{Nand, []bool{true, true}, false},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Xor, []bool{true, true, true}, true},
		{Xor, []bool{true, true}, false},
		{Xnor, []bool{true, false}, false},
		{Not, []bool{true}, false},
		{Buf, []bool{true}, true},
		{DFF, []bool{false}, false},
		{Const0, nil, false},
		{Const1, nil, true},
	}
	for _, c := range cases {
		if got := c.g.EvalBool(c.in); got != c.want {
			t.Errorf("%v.EvalBool(%v) = %v, want %v", c.g, c.in, got, c.want)
		}
	}
}

func TestEvalBoolPanicsOnNonCombinational(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EvalBool on Input did not panic")
		}
	}()
	Input.EvalBool(nil)
}

func TestParseGateTypeRoundTrip(t *testing.T) {
	for g := Input; g < NumGateTypes; g++ {
		got, err := ParseGateType(g.String())
		if err != nil {
			t.Fatalf("ParseGateType(%q): %v", g.String(), err)
		}
		if got != g {
			t.Errorf("ParseGateType(%q) = %v, want %v", g.String(), got, g)
		}
	}
	if _, err := ParseGateType("FLUX"); err == nil {
		t.Error("ParseGateType accepted unknown gate name")
	}
	// Aliases and case-insensitivity.
	for _, alias := range []string{"buf", "BUFF", "inv", "not", "nand", "Dff"} {
		if _, err := ParseGateType(alias); err != nil {
			t.Errorf("ParseGateType(%q): %v", alias, err)
		}
	}
}

func TestGateMetadata(t *testing.T) {
	if v, ok := And.Controlling(); !ok || v {
		t.Errorf("And.Controlling() = %v,%v, want false,true", v, ok)
	}
	if v, ok := Nor.Controlling(); !ok || !v {
		t.Errorf("Nor.Controlling() = %v,%v, want true,true", v, ok)
	}
	if _, ok := Xor.Controlling(); ok {
		t.Error("Xor has a controlling value")
	}
	if !Nand.Inverting() || And.Inverting() {
		t.Error("Inverting() wrong for And/Nand")
	}
	if !And.Monotone() || Xor.Monotone() || Input.Monotone() {
		t.Error("Monotone() wrong")
	}
	if !Xor.Parity() || And.Parity() {
		t.Error("Parity() wrong")
	}
	if Input.Combinational() || DFF.Combinational() || !And.Combinational() {
		t.Error("Combinational() wrong")
	}
	if And.MinFanin() != 2 || Not.MinFanin() != 1 || Input.MinFanin() != 0 {
		t.Error("MinFanin wrong")
	}
	if And.MaxFanin() != -1 || Not.MaxFanin() != 1 || Const0.MaxFanin() != 0 {
		t.Error("MaxFanin wrong")
	}
}

func TestInputStatsScenarios(t *testing.T) {
	u := UniformStats()
	if err := u.Validate(); err != nil {
		t.Fatalf("UniformStats invalid: %v", err)
	}
	if got := u.SignalProbability(); got != 0.5 {
		t.Errorf("scenario I signal probability = %v, want 0.5", got)
	}
	if got := u.TogglingRate(); got != 0.5 {
		t.Errorf("scenario I toggling rate = %v, want 0.5", got)
	}
	if got := u.TogglingVariance(); got != 0.25 {
		t.Errorf("scenario I toggling variance = %v, want 0.25", got)
	}

	s := SkewedStats()
	if err := s.Validate(); err != nil {
		t.Fatalf("SkewedStats invalid: %v", err)
	}
	if got := s.SignalProbability(); !close2(got, 0.2) {
		t.Errorf("scenario II signal probability = %v, want 0.2", got)
	}
	if got := s.TogglingRate(); !close2(got, 0.1) {
		t.Errorf("scenario II toggling rate = %v, want 0.1", got)
	}
	if got := s.TogglingVariance(); !close2(got, 0.09) {
		t.Errorf("scenario II toggling variance = %v, want 0.09", got)
	}
}

func TestInputStatsValidate(t *testing.T) {
	bad := InputStats{P: [NumValues]float64{0.5, 0.5, 0.5, -0.5}}
	if err := bad.Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	bad = InputStats{P: [NumValues]float64{0.5, 0.1, 0.1, 0.1}}
	if err := bad.Validate(); err == nil {
		t.Error("non-normalized distribution accepted")
	}
	bad = UniformStats()
	bad.Sigma = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func forEachValueCombo(n int, f func([]Value)) {
	in := make([]Value, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			f(in)
			return
		}
		for v := Zero; v < NumValues; v++ {
			in[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// TestQuickEvalConsistentWithEdges: for any gate and inputs, the
// four-value output's initial/final values equal the Boolean function
// of the inputs' initial/final values.
func TestQuickEvalConsistentWithEdges(t *testing.T) {
	gates := []GateType{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	f := func(raw []uint8, gi uint8) bool {
		if len(raw) == 0 {
			return true
		}
		g := gates[int(gi)%len(gates)]
		n := len(raw)
		if g.MaxFanin() == 1 {
			n = 1
		}
		if n < g.MinFanin() {
			return true
		}
		in := make([]Value, n)
		initial := make([]bool, n)
		final := make([]bool, n)
		for i := 0; i < n; i++ {
			in[i] = Value(raw[i] % NumValues)
			initial[i] = in[i].Initial()
			final[i] = in[i].Final()
		}
		out := g.Eval(in)
		return out.Initial() == g.EvalBool(initial) && out.Final() == g.EvalBool(final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
