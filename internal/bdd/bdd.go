// Package bdd implements reduced ordered binary decision diagrams,
// the symbolic substrate of Sections 2.2.1 and 3.5: signal
// probabilities and Boolean difference probabilities are evaluated
// in linear time in the BDD size, and building BDDs for every net of
// a netlist captures reconvergent-fanout correlations exactly.
package bdd

import (
	"errors"
	"fmt"
)

// Ref references a BDD node within a Manager. The terminals are
// False (0) and True (1).
type Ref int32

const (
	// False is the constant-0 terminal.
	False Ref = 0
	// True is the constant-1 terminal.
	True Ref = 1
)

// ErrNodeLimit is returned when an operation would grow the manager
// past its configured node limit (a blown-up symbolic analysis).
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

type node struct {
	level  int32 // variable index; terminals use maxLevel
	lo, hi Ref
}

const maxLevel = int32(1<<30 - 1)

type triple struct {
	f, g, h Ref
}

// Manager owns the shared node store, unique table and operation
// cache of one BDD universe with a fixed variable order 0..n-1
// (lower index = closer to the root).
type Manager struct {
	nodes  []node
	unique map[node]Ref
	ite    map[triple]Ref
	limit  int
	nvars  int
}

// New creates a manager for nvars variables. limit bounds the node
// count (0 means the default of 4 million nodes).
func New(nvars, limit int) *Manager {
	if limit <= 0 {
		limit = 4 << 20
	}
	m := &Manager{
		unique: make(map[node]Ref),
		ite:    make(map[triple]Ref),
		limit:  limit,
		nvars:  nvars,
	}
	m.nodes = append(m.nodes,
		node{level: maxLevel, lo: False, hi: False}, // False
		node{level: maxLevel, lo: True, hi: True},   // True
	)
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.nvars }

// Size returns the number of live nodes, including terminals.
func (m *Manager) Size() int { return len(m.nodes) }

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) (Ref, error) {
	if i < 0 || i >= m.nvars {
		return False, fmt.Errorf("bdd: variable %d out of range [0,%d)", i, m.nvars)
	}
	return m.mk(int32(i), False, True)
}

// Const returns the terminal for a Boolean constant.
func Const(b bool) Ref {
	if b {
		return True
	}
	return False
}

func (m *Manager) level(f Ref) int32 { return m.nodes[f].level }

func (m *Manager) mk(level int32, lo, hi Ref) (Ref, error) {
	if lo == hi {
		return lo, nil
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r, nil
	}
	if len(m.nodes) >= m.limit {
		return False, ErrNodeLimit
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r, nil
}

// ITE computes if-then-else(f, g, h) = f·g + f̄·h, the universal
// binary operation.
func (m *Manager) ITE(f, g, h Ref) (Ref, error) {
	// Terminal cases.
	switch {
	case f == True:
		return g, nil
	case f == False:
		return h, nil
	case g == h:
		return g, nil
	case g == True && h == False:
		return f, nil
	}
	key := triple{f, g, h}
	if r, ok := m.ite[key]; ok {
		return r, nil
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo, err := m.ITE(f0, g0, h0)
	if err != nil {
		return False, err
	}
	hi, err := m.ITE(f1, g1, h1)
	if err != nil {
		return False, err
	}
	r, err := m.mk(top, lo, hi)
	if err != nil {
		return False, err
	}
	m.ite[key] = r
	return r, nil
}

func (m *Manager) cofactors(f Ref, level int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// Not returns the complement of f.
func (m *Manager) Not(f Ref) (Ref, error) { return m.ITE(f, False, True) }

// And returns f AND g.
func (m *Manager) And(f, g Ref) (Ref, error) { return m.ITE(f, g, False) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) (Ref, error) { return m.ITE(f, True, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) (Ref, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.ITE(f, ng, g)
}

// AndN reduces a list with AND; the empty list yields True.
func (m *Manager) AndN(fs ...Ref) (Ref, error) {
	acc := True
	var err error
	for _, f := range fs {
		acc, err = m.And(acc, f)
		if err != nil {
			return False, err
		}
	}
	return acc, nil
}

// OrN reduces a list with OR; the empty list yields False.
func (m *Manager) OrN(fs ...Ref) (Ref, error) {
	acc := False
	var err error
	for _, f := range fs {
		acc, err = m.Or(acc, f)
		if err != nil {
			return False, err
		}
	}
	return acc, nil
}

// XorN reduces a list with XOR; the empty list yields False.
func (m *Manager) XorN(fs ...Ref) (Ref, error) {
	acc := False
	var err error
	for _, f := range fs {
		acc, err = m.Xor(acc, f)
		if err != nil {
			return False, err
		}
	}
	return acc, nil
}

// Restrict fixes variable v to the given value (positive/negative
// cofactor).
func (m *Manager) Restrict(f Ref, v int, value bool) (Ref, error) {
	if v < 0 || v >= m.nvars {
		return False, fmt.Errorf("bdd: variable %d out of range", v)
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) (Ref, error)
	rec = func(f Ref) (Ref, error) {
		n := m.nodes[f]
		if n.level > int32(v) {
			return f, nil // variable below v or terminal: unchanged
		}
		if r, ok := memo[f]; ok {
			return r, nil
		}
		var r Ref
		var err error
		if n.level == int32(v) {
			if value {
				r = n.hi
			} else {
				r = n.lo
			}
		} else {
			lo, err := rec(n.lo)
			if err != nil {
				return False, err
			}
			hi, err := rec(n.hi)
			if err != nil {
				return False, err
			}
			r, err = m.mk(n.level, lo, hi)
			if err != nil {
				return False, err
			}
		}
		memo[f] = r
		return r, err
	}
	return rec(f)
}

// BooleanDiff returns ∂f/∂x_v = f|x=1 XOR f|x=0 (Eq. 7): the
// condition under which toggling x toggles f.
func (m *Manager) BooleanDiff(f Ref, v int) (Ref, error) {
	f1, err := m.Restrict(f, v, true)
	if err != nil {
		return False, err
	}
	f0, err := m.Restrict(f, v, false)
	if err != nil {
		return False, err
	}
	return m.Xor(f1, f0)
}

// Probability evaluates P(f = 1) for independent variables with
// P(x_i = 1) = probs[i], in one memoized depth-first pass — the
// linear-in-BDD-size computation of Section 2.2.1.
func (m *Manager) Probability(f Ref, probs []float64) (float64, error) {
	if len(probs) != m.nvars {
		return 0, fmt.Errorf("bdd: %d probabilities for %d variables", len(probs), m.nvars)
	}
	memo := make(map[Ref]float64)
	var rec func(Ref) float64
	rec = func(f Ref) float64 {
		if f == False {
			return 0
		}
		if f == True {
			return 1
		}
		if p, ok := memo[f]; ok {
			return p
		}
		n := m.nodes[f]
		pv := probs[n.level]
		p := pv*rec(n.hi) + (1-pv)*rec(n.lo)
		memo[f] = p
		return p
	}
	return rec(f), nil
}

// SatCount returns the number of satisfying assignments of f over
// all NumVars variables: 2^n · P(f=1) with every variable at
// probability 1/2.
func (m *Manager) SatCount(f Ref) float64 {
	probs := make([]float64, m.nvars)
	for i := range probs {
		probs[i] = 0.5
	}
	p, err := m.Probability(f, probs)
	if err != nil {
		panic(err) // unreachable: probs length always matches
	}
	return p * pow2(m.nvars)
}

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

// Eval evaluates f under a complete variable assignment.
func (m *Manager) Eval(f Ref, assign []bool) (bool, error) {
	if len(assign) != m.nvars {
		return false, fmt.Errorf("bdd: %d assignments for %d variables", len(assign), m.nvars)
	}
	for f != False && f != True {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True, nil
}

// Support returns the sorted variable indices f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make(map[int32]bool)
	var rec func(Ref)
	rec = func(f Ref) {
		if f == False || f == True || seen[f] {
			return
		}
		seen[f] = true
		n := m.nodes[f]
		vars[n.level] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(v))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Level returns the variable index tested at f's root. It panics on
// terminals — check against False/True first.
func (m *Manager) Level(f Ref) int {
	if f == False || f == True {
		panic("bdd: Level of terminal")
	}
	return int(m.nodes[f].level)
}

// Cofactors returns the negative and positive cofactors of f with
// respect to its own top variable. It panics on terminals.
func (m *Manager) Cofactors(f Ref) (lo, hi Ref) {
	if f == False || f == True {
		panic("bdd: Cofactors of terminal")
	}
	n := m.nodes[f]
	return n.lo, n.hi
}
