package repro

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	c, err := GenerateBenchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	in := UniformInputs(c)
	res, err := AnalyzeSPSTA(c, in)
	if err != nil {
		t.Fatal(err)
	}
	end := c.CriticalEndpoint()
	mean, sigma, prob := res.Arrival(end, DirRise)
	if prob < 0 || prob > 1 {
		t.Errorf("prob = %v", prob)
	}
	if mean <= 0 || sigma <= 0 {
		t.Errorf("arrival = (%v, %v)", mean, sigma)
	}
	if _, err := GenerateBenchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error message %q lacks the name", err)
	}
}

func TestFacadeBenchRoundTrip(t *testing.T) {
	c, err := GenerateBenchmark("s208")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench(&buf, "s208")
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats() != c2.Stats() {
		t.Error("round trip changed stats")
	}
}

func TestFacadeAnalyzersAgree(t *testing.T) {
	c, err := GenerateBenchmark("s382")
	if err != nil {
		t.Fatal(err)
	}
	in := SkewedInputs(c)
	discrete, err := AnalyzeSPSTA(c, in)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := AnalyzeSPSTAMoments(c, in)
	if err != nil {
		t.Fatal(err)
	}
	end := c.CriticalEndpoint()
	for _, d := range []Dir{DirRise, DirFall} {
		dm, _, dp := discrete.Arrival(end, d)
		an, ap := analytic.Arrival(end, d)
		if math.Abs(dp-ap) > 1e-6 {
			t.Errorf("%v: prob %v vs %v", d, dp, ap)
		}
		if dp > 0.01 && math.Abs(dm-an.Mu) > 0.3 {
			t.Errorf("%v: mean %v vs %v", d, dm, an.Mu)
		}
	}
}

func TestFacadeBaselinesAndMC(t *testing.T) {
	c, err := GenerateBenchmark("s208")
	if err != nil {
		t.Fatal(err)
	}
	in := UniformInputs(c)
	sst := AnalyzeSSTA(c, in, nil)
	sta := AnalyzeSTA(c, in, nil, 3)
	mc, err := SimulateMonteCarlo(c, in, MonteCarloConfig{Runs: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	end := c.CriticalEndpoint()
	if b := sta.At(end, DirRise); sst.At(end, DirRise).Mu < b.Lo || sst.At(end, DirRise).Mu > b.Hi {
		t.Error("SSTA mean outside STA bounds")
	}
	if mc.Runs != 500 {
		t.Errorf("Runs = %d", mc.Runs)
	}
}

func TestFacadePowerHelpers(t *testing.T) {
	c, err := GenerateBenchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	probs := SignalProbabilities(c, nil)
	for _, n := range c.Nodes {
		if probs[n.ID] < 0 || probs[n.ID] > 1 {
			t.Fatalf("P(%s) = %v", n.Name, probs[n.ID])
		}
	}
	dens := make(map[NodeID]float64)
	for _, id := range c.LaunchPoints() {
		dens[id] = 0.5
	}
	rho := TransitionDensities(c, nil, dens)
	p := DynamicPower(c, rho, 1, 1)
	if p <= 0 {
		t.Errorf("power = %v", p)
	}
	exact, err := ExactSignalProbabilities(c, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != len(c.Nodes) {
		t.Error("exact probabilities length wrong")
	}
}

func TestFacadeSymbolic(t *testing.T) {
	c, err := GenerateBenchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	in := UniformInputs(c)
	res, err := AnalyzeSymbolicSSTA(c, in, SymbolicLevelDelay(4, 1, 0.1, 0.05), 4)
	if err != nil {
		t.Fatal(err)
	}
	end := c.CriticalEndpoint()
	arr := res.At(end, DirRise)
	if arr.Sigma() <= 0 {
		t.Error("symbolic sigma not positive")
	}
	sp, err := AnalyzeSymbolicSPSTA(c, in, SymbolicUnitDelay(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, prob := sp.At(end, DirRise); prob < 0 || prob > 1 {
		t.Errorf("symbolic SPSTA prob = %v", prob)
	}
}

func TestFacadeScenarioHelpers(t *testing.T) {
	if UniformStats().SignalProbability() != 0.5 {
		t.Error("UniformStats wrong")
	}
	if SkewedStats().TogglingRate() != 0.1 {
		t.Error("SkewedStats wrong")
	}
	c, _ := GenerateBenchmark("s208")
	if n := UnitDelay(c.Nodes[0]); n.Mu != 1 || n.Sigma != 0 {
		t.Error("UnitDelay wrong")
	}
	g := TimingGrid(8, 0, 1)
	if g.N == 0 {
		t.Error("TimingGrid empty")
	}
	tm := AnalyzeToggleMoments(c, UniformInputs(c))
	if tm.Mean[c.LaunchPoints()[0]] != 0.5 {
		t.Error("ToggleMoments launch mean wrong")
	}
}

func TestFacadeCustomProfileAndCircuit(t *testing.T) {
	p := Profile{Name: "tiny", Inputs: 3, Outputs: 2, DFFs: 1, Gates: 12, Depth: 4}
	c, err := GenerateProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Gates != 12 {
		t.Error("custom profile gates wrong")
	}
	// Hand-built circuit through the facade.
	hc := NewCircuit("hand")
	if _, err := hc.AddNode("a", GateType(0)); err != nil { // Input
		t.Fatal(err)
	}
	if err := hc.Freeze(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExactProbabilities(t *testing.T) {
	c, err := GenerateBenchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	in := UniformInputs(c)
	res, err := AnalyzeSPSTAExact(c, in)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := ExactFourValueProbabilities(c, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		for v := Zero; v < 4; v++ {
			if math.Abs(res.Probability(n.ID, v)-fv[n.ID][v]) > 1e-9 {
				t.Fatalf("%s: corrected P[%v] %v vs pair-BDD %v",
					n.Name, v, res.Probability(n.ID, v), fv[n.ID][v])
			}
		}
	}
}

func TestFacadeParallel(t *testing.T) {
	c, err := GenerateBenchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	in := UniformInputs(c)
	serial, err := AnalyzeSPSTAParallel(c, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := AnalyzeSPSTAParallel(c, in, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range c.Endpoints() {
		for _, d := range []Dir{DirRise, DirFall} {
			sm, ss, sp := serial.Arrival(id, d)
			pm, ps, pp := parallel.Arrival(id, d)
			if sm != pm || ss != ps || sp != pp {
				t.Fatalf("%s dir %v: serial (%v,%v,%v) != parallel (%v,%v,%v)",
					c.Nodes[id].Name, d, sm, ss, sp, pm, ps, pp)
			}
		}
	}
}

func TestFacadeCrosstalkAndPaths(t *testing.T) {
	c, err := GenerateBenchmark("s208")
	if err != nil {
		t.Fatal(err)
	}
	in := UniformInputs(c)
	res, err := AnalyzeSPSTA(c, in)
	if err != nil {
		t.Fatal(err)
	}
	end := c.CriticalEndpoint()
	var agg NodeID = -1
	for _, n := range c.Nodes {
		if n.ID != end && n.Type.Combinational() {
			agg = n.ID
			break
		}
	}
	a, err := AnalyzeCrosstalk(res, Coupling{Victim: end, Aggressor: agg, Window: 0.5, Slowdown: 1}, DirRise)
	if err != nil {
		t.Fatal(err)
	}
	if a.POpposite < 0 || a.POpposite > 1 {
		t.Errorf("POpposite = %v", a.POpposite)
	}
	ps := EnumeratePaths(c, end, 4)
	if len(ps) == 0 {
		t.Fatal("no paths")
	}
	crit := PathCriticalities(c, ps, in, nil)
	sum := 0.0
	for _, v := range crit {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("criticalities sum %v", sum)
	}
	d := PathDelay(c, ps[0], Normal{Mu: 0, Sigma: 1}, nil)
	if d.Mu != float64(ps[0].Length) {
		t.Errorf("path delay %v for length %d", d.Mu, ps[0].Length)
	}
}

func TestFacadeRCAndMIS(t *testing.T) {
	line, err := RCLine(8, 1, 2, 0.25, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewRCTree([]int{-1, 0}, []float64{1, 2}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	_ = tree
	c, err := GenerateBenchmark("s208")
	if err != nil {
		t.Fatal(err)
	}
	loads := map[NodeID]RCLoad{}
	for _, n := range c.Nodes {
		if n.Type.Combinational() {
			loads[n.ID] = RCLoad{Tree: line, Sink: 8, Intrinsic: 0.5, SigmaR: 0.1, SigmaC: 0.1}
			break
		}
	}
	model := RCDelayModel(loads, nil)
	_ = AnalyzeSSTA(c, UniformInputs(c), model)

	mis := func(n *Node, k int) Normal {
		if k > 1 {
			return Normal{Mu: 0.8}
		}
		return Normal{Mu: 1}
	}
	if _, err := AnalyzeSPSTAMIS(c, UniformInputs(c), mis); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSequentialAndGrid(t *testing.T) {
	c, err := GenerateBenchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	in := make(map[NodeID]InputStats)
	for _, id := range c.Inputs() {
		in[id] = SkewedStats()
	}
	seq, err := AnalyzeSequential(c, in, SequentialOptions{MaxIterations: 30, Damping: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Iterations < 1 {
		t.Error("no iterations")
	}
	toggling := make([]float64, len(c.Nodes))
	for _, n := range c.Nodes {
		toggling[n.ID] = seq.Final.TogglingRate(n.ID)
	}
	mesh, err := NewPowerMesh(6, 6, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	model, v, droop, err := CouplePowerGrid(c, mesh, toggling, 0.05, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 36 || droop < 0 {
		t.Errorf("grid solve: %d nodes, droop %v", len(v), droop)
	}
	_ = AnalyzeSSTA(c, UniformInputs(c), model)
}

func TestFacadeIncremental(t *testing.T) {
	c, err := GenerateBenchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	in := UniformInputs(c)
	inc := NewIncrementalSSTA(c, in, nil)
	var gate NodeID = -1
	for _, n := range c.Nodes {
		if n.Type.Combinational() {
			gate = n.ID
			break
		}
	}
	if evals := inc.SetDelay(gate, Normal{Mu: 1.5}); evals < 1 {
		t.Error("nothing recomputed")
	}
	sp, err := NewIncrementalSPSTA(c, in)
	if err != nil {
		t.Fatal(err)
	}
	launch := c.LaunchPoints()[0]
	if _, err := sp.SetInput(launch, SkewedStats()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeVerilogAndVectors(t *testing.T) {
	c, err := GenerateBenchmark("s208")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseVerilog(&buf, "s208")
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats() != c2.Stats() {
		t.Error("verilog round trip changed stats")
	}
	vals := make(map[NodeID]Value)
	for _, id := range c.LaunchPoints() {
		vals[id] = One
	}
	ev, err := EvaluateVectors(c, vals, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, any := ev.WorstArrival(); any {
		t.Error("constant vector produced a transition")
	}
}
