package incr

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// TestIncrementalRecordsIntoRunScope pins the scope-inheritance
// contract: incremental recomputation (ComputeNode via SetDelay)
// records its kernel and mixture work into the scope of the original
// Run — carried by the Result's grid — not into a global registry and
// not into nothing.
func TestIncrementalRecordsIntoRunScope(t *testing.T) {
	c := gen(t, "s344")
	in := experiments.Inputs(c, experiments.ScenarioI)
	scope := obs.NewScope()
	inc, err := NewSPSTA(core.Analyzer{Obs: scope}, c, in)
	if err != nil {
		t.Fatal(err)
	}
	base := scope.Snapshot()
	if base.KernelCache.Hits+base.KernelCache.Misses == 0 {
		t.Fatal("initial Run recorded no kernel lookups into the scope")
	}

	// A sigma > 0 delay forces a fresh convolution kernel, so the
	// recompute must record at least one new kernel miss.
	evals, err := inc.SetDelay(pickGate(c), dist.Normal{Mu: 2, Sigma: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if evals == 0 {
		t.Fatal("SetDelay recomputed nothing")
	}
	after := scope.Snapshot()
	if after.KernelCache.Misses <= base.KernelCache.Misses {
		t.Errorf("incremental update recorded no new kernel misses: %d -> %d",
			base.KernelCache.Misses, after.KernelCache.Misses)
	}

	// A second instance with its own scope must not leak into the
	// first: counters of scope stay put while scope2 accumulates.
	scope2 := obs.NewScope()
	if _, err := NewSPSTA(core.Analyzer{Obs: scope2}, c, in); err != nil {
		t.Fatal(err)
	}
	again := scope.Snapshot()
	if again.KernelCache.Hits != after.KernelCache.Hits ||
		again.KernelCache.Misses != after.KernelCache.Misses {
		t.Error("an unrelated scoped run mutated the first scope's counters")
	}
	if s2 := scope2.Snapshot(); s2.KernelCache.Hits+s2.KernelCache.Misses == 0 {
		t.Error("second scope recorded nothing")
	}
}
