package core

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/ssta"
)

// DefaultMaxMomentFanin bounds the O(2^k) subset enumeration of the
// analytic moment-based analyzer.
const DefaultMaxMomentFanin = 16

// MomentTiming is the analytic SPSTA abstraction of Section 3.4
// applied to arrival times: instead of discretized t.o.p. functions
// it carries, per net and direction, the transition occurrence
// probability and the conditional arrival-time mean and variance,
// using Clark moment matching for the MIN/MAX inside each
// switching-input subset and exact mixture moments for the WEIGHTED
// SUM across subsets. It is faster and grid-free, at the cost of the
// normal-mixture approximation — one point of the paper's
// accuracy/efficiency tradeoff.
type MomentTiming struct {
	// Delay is the gate delay model (default ssta.UnitDelay).
	Delay ssta.DelayModel
	// MaxFanin caps the subset enumeration (default
	// DefaultMaxMomentFanin).
	MaxFanin int
	// Workers is the number of goroutines evaluating gates of one
	// unit-delay level concurrently (0 = GOMAXPROCS, 1 = serial);
	// results are bit-identical for any worker count.
	Workers int
	// SerialCutoff tunes the cost-aware schedule: a level whose
	// estimated work — sum over its gates of enumerated subset
	// leaves, 2^k for a monotone gate of fanin k and 4^k for parity —
	// falls below the cutoff runs inline instead of being dispatched
	// to the worker pool. 0 selects DefaultMomentSerialCutoff;
	// negative disables the fallback. On GOMAXPROCS=1 runtimes every
	// level runs inline regardless (unless SerialCutoff is negative).
	SerialCutoff int64
	// ErrorBudget is the per-net ε for adaptive pruning (DESIGN.md
	// §11): the subset enumerations order fanins by switching
	// probability and cut whole subtrees whose exact remaining
	// occurrence weight fits in the budget (ε/2 per mixture direction
	// for monotone gates, ε for the parity enumeration). Removed mass
	// is folded back into the four-value probabilities and tracked in
	// MomentState.PrunedMass/Budget. Zero disables pruning and is
	// bit-identical to the exact engine; pruning decisions depend only
	// on the configuration, never on Workers.
	ErrorBudget float64
	// Obs is the analysis' observability scope (metrics and optional
	// tracing); nil disables instrumentation. Scopes are per-analysis,
	// so concurrent Runs with distinct scopes never share counters.
	Obs *obs.Scope
}

// DefaultMomentSerialCutoff is the default serial-fallback threshold
// of MomentTiming in subset-leaf units — the break-even point between
// per-level dispatch overhead and distributable enumeration work on
// the cmd/benchperf harness.
const DefaultMomentSerialCutoff = 8192

// MomentState is the per-net analytic SPSTA view.
type MomentState struct {
	// P holds the four-value occurrence probabilities.
	P [logic.NumValues]float64
	// Arr[d] is the conditional arrival-time normal of direction d
	// (meaningful when P[Rise]/P[Fall] > 0).
	Arr [2]dist.Normal
	// PrunedMass bounds the occurrence mass removed at this net by
	// ε-bounded pruning (0 on exact runs); already folded back into P.
	PrunedMass float64
	// Budget is the net's cumulative certified deviation bound: the
	// local pruning bound plus every combinational fanin's Budget.
	Budget float64
}

// MomentResult is a completed analytic SPSTA analysis.
type MomentResult struct {
	C     *netlist.Circuit
	State []MomentState
	// Span is the analytic arrival interval width every conditional
	// statistic of the run lies in (the grid-free analog of the
	// Analyzer's grid span), used by DeviationBounds.
	Span float64
}

// Run executes the analytic analyzer.
func (a *MomentTiming) Run(c *netlist.Circuit, inputs map[netlist.NodeID]logic.InputStats) (*MomentResult, error) {
	delay := a.Delay
	if delay == nil {
		delay = ssta.UnitDelay
	}
	maxFanin := a.MaxFanin
	if maxFanin == 0 {
		maxFanin = DefaultMaxMomentFanin
	}
	res := &MomentResult{C: c, State: make([]MomentState, len(c.Nodes)), Span: momentSpan(c, inputs)}
	defaultStats := logic.UniformStats()
	name := func(id netlist.NodeID) string { return c.Nodes[id].Name }
	cutoff := a.SerialCutoff
	if cutoff == 0 {
		cutoff = DefaultMomentSerialCutoff
	}
	// Per-gate work is the subset enumeration: ~2·2^k leaves for a
	// monotone gate of fanin k, 4^k value combinations for parity,
	// constant for buffers/inverters and launch points.
	cost := func(id netlist.NodeID) int64 {
		n := c.Nodes[id]
		k := len(n.Fanin)
		switch {
		case n.Type.Parity():
			if k > 15 {
				k = 15
			}
			return 1 << uint(2*k)
		case n.Type.Monotone() && k > 1:
			if k > 30 {
				k = 30
			}
			return 2 << uint(k)
		}
		return 1
	}
	if a.ErrorBudget > 0 {
		// Post-pruning leaf estimate: fanins whose value probabilities
		// fit in the budget are cut near the enumeration root, so only
		// significant values multiply the leaf count. Fanin states are
		// final when the scheduler costs a level.
		eps := a.ErrorBudget
		cost = func(id netlist.NodeID) int64 {
			n := c.Nodes[id]
			switch {
			case n.Type.Parity():
				leaves := int64(1)
				for _, f := range n.Fanin {
					nv := int64(0)
					for v := logic.Zero; v < logic.NumValues; v++ {
						if res.State[f].P[v] > eps {
							nv++
						}
					}
					if nv == 0 {
						nv = 1
					}
					leaves *= nv
					if leaves > 1<<30 {
						return leaves
					}
				}
				return leaves
			case n.Type.Monotone() && len(n.Fanin) > 1:
				k := 0
				for _, f := range n.Fanin {
					if res.State[f].P[logic.Rise]+res.State[f].P[logic.Fall] > eps {
						k++
					}
				}
				if k > 30 {
					k = 30
				}
				return 2 << uint(k)
			}
			return 1
		}
	}
	err := runLevels(a.Obs.M(), a.Obs.T(), a.Obs.SpanID(), resolveWorkers(a.Workers), c.Levelize(), len(c.Nodes), name, cost, cutoff, func(id netlist.NodeID) error {
		n := c.Nodes[id]
		st := &res.State[id]
		switch {
		case n.Type == logic.Const0:
			st.P[logic.Zero] = 1
		case n.Type == logic.Const1:
			st.P[logic.One] = 1
		case !n.Type.Combinational():
			in, ok := inputs[id]
			if !ok {
				in = defaultStats
			}
			if err := in.Validate(); err != nil {
				return fmt.Errorf("core: launch %s: %w", n.Name, err)
			}
			st.P = in.P
			arr := dist.Normal{Mu: in.Mu, Sigma: in.Sigma}
			st.Arr[ssta.DirRise] = arr
			st.Arr[ssta.DirFall] = arr
		default:
			if err := momentGate(res, n, delay, maxFanin, a.ErrorBudget, a.Obs.M()); err != nil {
				return err
			}
			if a.ErrorBudget > 0 {
				// Cumulative certificate: fanin deviation bounds add
				// (see Analyzer.computeNode).
				for _, f := range n.Fanin {
					st.Budget += res.State[f].Budget
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// mixAccum accumulates mixture moments across switching subsets.
type mixAccum struct {
	w, m1, m2 float64
}

func (m *mixAccum) add(weight float64, n dist.Normal) {
	m.w += weight
	m.m1 += weight * n.Mu
	m.m2 += weight * (n.Var() + n.Mu*n.Mu)
}

// normal returns the moment-matched conditional normal and the total
// probability of the mixture.
func (m *mixAccum) normal() (dist.Normal, float64) {
	if m.w == 0 {
		return dist.Normal{}, 0
	}
	mu := m.m1 / m.w
	v := m.m2/m.w - mu*mu
	if v < 0 {
		v = 0
	}
	return dist.Normal{Mu: mu, Sigma: sqrt(v)}, m.w
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

func momentGate(res *MomentResult, n *netlist.Node, delay ssta.DelayModel, maxFanin int, eps float64, m *obs.Metrics) error {
	st := &res.State[n.ID]
	d := delay(n)
	shift := func(x dist.Normal) dist.Normal {
		return dist.Normal{Mu: x.Mu + d.Mu, Sigma: sqrt(x.Var() + d.Var())}
	}
	switch {
	case n.Type == logic.Buf || n.Type == logic.Not:
		in := &res.State[n.Fanin[0]]
		if n.Type == logic.Buf {
			st.P = in.P
			st.Arr[ssta.DirRise] = shift(in.Arr[ssta.DirRise])
			st.Arr[ssta.DirFall] = shift(in.Arr[ssta.DirFall])
		} else {
			st.P[logic.Zero] = in.P[logic.One]
			st.P[logic.One] = in.P[logic.Zero]
			st.P[logic.Rise] = in.P[logic.Fall]
			st.P[logic.Fall] = in.P[logic.Rise]
			st.Arr[ssta.DirRise] = shift(in.Arr[ssta.DirFall])
			st.Arr[ssta.DirFall] = shift(in.Arr[ssta.DirRise])
		}
		return nil

	case n.Type.Monotone():
		if len(n.Fanin) > maxFanin {
			return fmt.Errorf("core: %s: fanin %d exceeds moment cap %d", n.Name, len(n.Fanin), maxFanin)
		}
		ctrl, _ := n.Type.Controlling()
		ncVal := logic.Zero
		towardNC, towardCtrl := logic.Fall, logic.Rise
		if !ctrl {
			ncVal = logic.One
			towardNC, towardCtrl = logic.Rise, logic.Fall
		}
		var ncd, cd mixAccum
		pNCD := 1.0
		for _, f := range n.Fanin {
			pNCD *= res.State[f].P[ncVal]
		}
		var leaves *int64
		if m != nil {
			leaves = new(int64)
		}
		ordNC, ordC := n.Fanin, n.Fanin
		var sufNC, ncsNC, sufC, ncsC []float64
		var bbNCD, bbCD *bbState
		if eps > 0 {
			// ε/2 of branch-and-bound budget per mixture direction.
			ordNC, sufNC, ncsNC = momentOrder(res, n.Fanin, ncVal, towardNC)
			ordC, sufC, ncsC = momentOrder(res, n.Fanin, ncVal, towardCtrl)
			bbNCD = &bbState{budget: eps / 2}
			bbCD = &bbState{budget: eps / 2}
		}
		subsetMoments(res, ordNC, ncVal, towardNC, true, &ncd, leaves, sufNC, ncsNC, bbNCD)
		subsetMoments(res, ordC, ncVal, towardCtrl, false, &cd, leaves, sufC, ncsC, bbCD)
		if eps > 0 {
			bbNCD.flush(m, len(n.Fanin))
			bbCD.flush(m, len(n.Fanin))
			// The controlled-value residual bucket below absorbs the
			// pruned mixture mass, so probabilities still sum to 1.
			st.PrunedMass = bbNCD.pruned + bbCD.pruned
			st.Budget = st.PrunedMass
		}
		if m != nil {
			m.SubsetLeaves.Add(len(n.Fanin), *leaves)
			m.CostLeafOps.Add(*leaves)
		}
		ncdOut := n.Type.EvalBool(allBool(len(n.Fanin), !ctrl))
		ncdArr, ncdP := ncd.normal()
		cdArr, cdP := cd.normal()
		var riseArr, fallArr dist.Normal
		var riseP, fallP float64
		if ncdOut {
			riseArr, riseP, fallArr, fallP = ncdArr, ncdP, cdArr, cdP
		} else {
			riseArr, riseP, fallArr, fallP = cdArr, cdP, ncdArr, ncdP
		}
		st.P[boolVal(ncdOut)] = pNCD
		st.P[logic.Rise] = riseP
		st.P[logic.Fall] = fallP
		st.P[boolVal(!ncdOut)] = clampProb(1 - pNCD - riseP - fallP)
		st.Arr[ssta.DirRise] = shift(riseArr)
		st.Arr[ssta.DirFall] = shift(fallArr)
		return nil

	case n.Type.Parity():
		if len(n.Fanin) > DefaultMaxParityFanin {
			return fmt.Errorf("core: %s: parity fanin %d too wide", n.Name, len(n.Fanin))
		}
		var rise, fall mixAccum
		vals := make([]logic.Value, len(n.Fanin))
		var leaves *int64
		if m != nil {
			leaves = new(int64)
		}
		// With a budget, fanins are reordered by ascending switching
		// probability and subtrees whose exact remaining occurrence
		// weight (suffix product) fits in ε are cut whole; the missing
		// mass is restored by renormMomentParity below.
		ord := n.Fanin
		var suffix []float64
		var bb *bbState
		if eps > 0 {
			ord, suffix = momentParityOrder(res, n.Fanin)
			bb = &bbState{budget: eps}
		}
		var rec func(i int, weight float64)
		rec = func(i int, weight float64) {
			if weight == 0 {
				return
			}
			if bb != nil {
				if sub := weight * suffix[i]; sub > 0 && sub <= bb.budget {
					bb.budget -= sub
					bb.pruned += sub
					bb.cuts++
					bb.leaves += pow4(len(vals) - i)
					return
				}
			}
			if i == len(vals) {
				if leaves != nil {
					*leaves++
				}
				out, op := n.Type.SettleOp(vals)
				if !out.Switching() {
					st.P[out] += weight
					return
				}
				first := true
				var acc dist.Normal
				for j, v := range vals {
					if !v.Switching() {
						continue
					}
					arr := res.State[ord[j]].Arr[dirOf(v)]
					if first {
						acc, first = arr, false
					} else if op == logic.OpMax {
						acc = dist.MaxNormal(acc, arr, 0)
					} else {
						acc = dist.MinNormal(acc, arr, 0)
					}
				}
				if out == logic.Rise {
					rise.add(weight, acc)
				} else {
					fall.add(weight, acc)
				}
				return
			}
			in := &res.State[ord[i]]
			for v := logic.Zero; v < logic.NumValues; v++ {
				vals[i] = v
				rec(i+1, weight*in.P[v])
			}
		}
		rec(0, 1)
		bb.flush(m, len(n.Fanin))
		if m != nil {
			m.SubsetLeaves.Add(len(n.Fanin), *leaves)
			m.CostLeafOps.Add(*leaves)
		}
		riseArr, riseP := rise.normal()
		fallArr, fallP := fall.normal()
		st.P[logic.Rise] = riseP
		st.P[logic.Fall] = fallP
		st.Arr[ssta.DirRise] = shift(riseArr)
		st.Arr[ssta.DirFall] = shift(fallArr)
		if eps > 0 {
			renormMomentParity(st)
		}
		return nil
	}
	return fmt.Errorf("core: unsupported gate %v", n.Type)
}

// subsetMoments enumerates non-empty switching subsets (direction
// dir, the rest pinned at ncVal) and accumulates the Clark-combined
// subset arrival moments into acc. max selects MAX (true) or MIN
// combination. leaves, when non-nil, counts enumerated subset leaves
// for the obs histogram.
//
// fanin is the evaluation order (the node's fanin slice on exact
// runs, a switching-probability sort under a budget). When bb is
// non-nil, suffix[i] = Π_{j≥i}(Pnc_j + Pdir_j) and ncSuffix[i] =
// Π_{j≥i} Pnc_j bound the subtree at position i: its contribution to
// the mixture is exactly weight·suffix[i] once a switcher was taken
// (has), and weight·(suffix[i]−ncSuffix[i]) before (the all-stay
// continuation never reaches acc), so subtrees whose contribution
// fits in the remaining budget are cut whole.
func subsetMoments(res *MomentResult, fanin []netlist.NodeID, ncVal, dir logic.Value, max bool, acc *mixAccum, leaves *int64, suffix, ncSuffix []float64, bb *bbState) {
	var rec func(i int, weight float64, cur dist.Normal, has bool)
	rec = func(i int, weight float64, cur dist.Normal, has bool) {
		if weight == 0 {
			return
		}
		if bb != nil {
			sub := weight * suffix[i]
			if !has {
				sub = weight * (suffix[i] - ncSuffix[i])
			}
			if sub > 0 && sub <= bb.budget {
				bb.budget -= sub
				bb.pruned += sub
				bb.cuts++
				bb.leaves += int64(1) << uint(len(fanin)-i)
				return
			}
		}
		if i == len(fanin) {
			if leaves != nil {
				*leaves++
			}
			if has {
				acc.add(weight, cur)
			}
			return
		}
		in := &res.State[fanin[i]]
		// Input holds the non-controlling constant.
		rec(i+1, weight*in.P[ncVal], cur, has)
		// Input switches toward dir.
		p := in.P[dir]
		if p > 0 {
			arr := in.Arr[dirOf(dir)]
			next := arr
			if has {
				if max {
					next = dist.MaxNormal(cur, arr, 0)
				} else {
					next = dist.MinNormal(cur, arr, 0)
				}
			}
			rec(i+1, weight*p, next, true)
		}
	}
	rec(0, 1, dist.Normal{}, false)
}

// Probability returns P(net id has value v).
func (r *MomentResult) Probability(id netlist.NodeID, v logic.Value) float64 {
	return r.State[id].P[v]
}

// Arrival returns the conditional arrival normal and occurrence
// probability of direction d at net id.
func (r *MomentResult) Arrival(id netlist.NodeID, d ssta.Dir) (dist.Normal, float64) {
	v := logic.Rise
	if d == ssta.DirFall {
		v = logic.Fall
	}
	return r.State[id].Arr[d], r.State[id].P[v]
}
