// Package timeline is a dependency-free in-process time-series
// store: a sampler scrapes registered collectors at a fixed interval
// into bounded per-series ring buffers, turning the service's
// point-in-time atomics (RED histograms, cache and pool counters,
// drift gauges, runtime stats) into windowed history that can answer
// "did p99 degrade over the last ten minutes?" without an external
// metrics stack.
//
// Three series kinds cover everything the service exposes:
//
//   - Gauge: the sampled value is the value (queue depth, heap bytes).
//   - Counter: the sampled value is a monotone cumulative total;
//     queries are delta-aware — consecutive-sample differences, with a
//     decrease read as a process restart so the post-reset total
//     counts from zero instead of producing a negative spike.
//   - Histogram: the sample is a snapshot of cumulative per-bucket
//     counts (fixed finite bounds plus a +Inf overflow bucket); a
//     windowed query subtracts the snapshot at the window start from
//     the latest, and percentiles come from obs.HistQuantile's exact
//     within-bucket interpolation.
//
// The store never allocates past its configured ring capacity: the
// oldest sample of each series is overwritten once the ring is full,
// bounding memory for arbitrarily long uptimes. All methods are safe
// for concurrent use; sampling takes one write lock per tick, queries
// a read lock. The SLO engine (slo.go) evaluates its objectives at
// every sample boundary, so alert transitions are deterministic
// functions of the sampled history — tests drive Sample with a fake
// clock and assert exact fire/clear ticks.
package timeline

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Kind is a series' data model.
type Kind int

const (
	// Gauge samples carry the instantaneous value.
	Gauge Kind = iota
	// Counter samples carry a monotone cumulative total; windowed
	// reads difference consecutive samples with reset detection.
	Counter
	// Histogram samples carry cumulative per-bucket counts.
	Histogram
)

func (k Kind) String() string {
	switch k {
	case Gauge:
		return "gauge"
	case Counter:
		return "counter"
	case Histogram:
		return "histogram"
	}
	return "unknown"
}

// Config parameterizes a Store.
type Config struct {
	// Capacity bounds each series' ring (samples kept); 0 means
	// DefaultCapacity.
	Capacity int
	// Now is the clock; nil means time.Now. Tests inject a fake clock
	// so window arithmetic and SLO transitions are deterministic.
	Now func() time.Time
}

// DefaultCapacity keeps ~34 minutes of history at a 1s sampling
// interval, in about 16 KiB per scalar series.
const DefaultCapacity = 2048

// Collector contributes samples to one tick: it is called with the
// tick's Batch and reports current values through Gauge/Counter/Hist.
type Collector func(b *Batch)

// series is one named ring. Scalar kinds use v; histograms keep a
// per-sample snapshot of cumulative bucket counts in h (slot slices
// are reused once the ring wraps, so a full ring allocates nothing).
type series struct {
	name   string
	kind   Kind
	bounds []float64 // histograms only

	t     []int64 // unix nanos, ring storage
	v     []float64
	h     [][]int64
	start int // index of oldest sample
	n     int // samples held
}

// at returns the i-th oldest sample index's storage slot.
func (s *series) at(i int) int { return (s.start + i) % len(s.t) }

// Store is the time-series store.
type Store struct {
	cap        int
	now        func() time.Time
	collectors []Collector

	mu      sync.RWMutex
	series  map[string]*series
	order   []string // registration order, for stable listings
	samples int64    // ticks taken
	lastT   int64    // unix nanos of the newest tick

	slo *SLOEngine

	runMu sync.Mutex
	stop  chan struct{}
	done  chan struct{}
}

// NewStore builds a store over the given collectors.
func NewStore(cfg Config, collectors ...Collector) *Store {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Store{
		cap:        cfg.Capacity,
		now:        now,
		collectors: collectors,
		series:     make(map[string]*series),
	}
}

// SetSLO attaches an SLO engine: Evaluate runs after every Sample, so
// objective state only ever changes at sample boundaries.
func (st *Store) SetSLO(e *SLOEngine) { st.slo = e }

// SLO returns the attached engine, nil when none is.
func (st *Store) SLO() *SLOEngine { return st.slo }

// Batch is one tick's collection surface, valid only during Sample.
type Batch struct {
	st *Store
	t  int64
}

// Gauge records the instantaneous value of a gauge series.
func (b *Batch) Gauge(name string, v float64) { b.st.append(name, Gauge, nil, v, nil, b.t) }

// Counter records the cumulative total of a counter series.
func (b *Batch) Counter(name string, total float64) {
	b.st.append(name, Counter, nil, total, nil, b.t)
}

// Hist records a histogram snapshot: cumulative per-bucket counts
// (len(bounds)+1, last bucket +Inf). The counts are copied.
func (b *Batch) Hist(name string, bounds []float64, counts []int64) {
	b.st.append(name, Histogram, bounds, 0, counts, b.t)
}

// append stores one sample under the write lock held by Sample.
func (st *Store) append(name string, kind Kind, bounds []float64, v float64, counts []int64, t int64) {
	s := st.series[name]
	if s == nil {
		s = &series{name: name, kind: kind, t: make([]int64, st.cap)}
		if kind == Histogram {
			s.bounds = append([]float64(nil), bounds...)
			s.h = make([][]int64, st.cap)
		} else {
			s.v = make([]float64, st.cap)
		}
		st.series[name] = s
		st.order = append(st.order, name)
	}
	if s.kind != kind {
		return // collector bug; drop rather than corrupt the ring
	}
	var slot int
	if s.n == len(s.t) {
		slot = s.start
		s.start = (s.start + 1) % len(s.t)
	} else {
		slot = s.at(s.n)
		s.n++
	}
	s.t[slot] = t
	if kind == Histogram {
		if cap(s.h[slot]) < len(counts) {
			s.h[slot] = make([]int64, len(counts))
		}
		s.h[slot] = s.h[slot][:len(counts)]
		copy(s.h[slot], counts)
	} else {
		s.v[slot] = v
	}
}

// Sample takes one tick: every collector reports into the ring under
// one write lock, then the attached SLO engine (if any) evaluates at
// the tick's timestamp. Returns the tick time.
func (st *Store) Sample() time.Time {
	now := st.now()
	b := &Batch{st: st, t: now.UnixNano()}
	st.mu.Lock()
	for _, c := range st.collectors {
		c(b)
	}
	st.samples++
	st.lastT = b.t
	st.mu.Unlock()
	if st.slo != nil {
		st.slo.Evaluate(now)
	}
	return now
}

// Start launches the sampling goroutine at the given interval. A
// second Start without an intervening Stop is a no-op. The first tick
// fires immediately so a fresh store is never empty.
func (st *Store) Start(interval time.Duration) {
	st.runMu.Lock()
	defer st.runMu.Unlock()
	if st.stop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	st.stop, st.done = stop, done
	go func() {
		defer close(done)
		st.Sample()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				st.Sample()
			}
		}
	}()
}

// Stop halts the sampling goroutine and waits for it to exit. The
// store remains queryable and can be restarted.
func (st *Store) Stop() {
	st.runMu.Lock()
	defer st.runMu.Unlock()
	if st.stop == nil {
		return
	}
	close(st.stop)
	<-st.done
	st.stop, st.done = nil, nil
}

// Samples returns the number of ticks taken.
func (st *Store) Samples() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.samples
}

// Names returns every series name in registration order.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]string(nil), st.order...)
}

// Point is one emitted query point. T is unix milliseconds. Scalar
// kinds fill V (and Rate for counters, per second); histogram points
// summarize the step between emitted points: Count observations,
// Rate per second, and p50/p95/p99 by exact within-bucket
// interpolation over the step's bucket deltas.
type Point struct {
	T     int64   `json:"t"`
	V     float64 `json:"v,omitzero"`
	Rate  float64 `json:"rate,omitzero"`
	Count int64   `json:"count,omitzero"`
	P50   float64 `json:"p50,omitzero"`
	P95   float64 `json:"p95,omitzero"`
	P99   float64 `json:"p99,omitzero"`
}

// SeriesData is one series' windowed query result.
type SeriesData struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// Query returns the named series' samples in (since, until],
// downsampled by striding so each series emits at most maxPoints
// points. Empty names means every series; maxPoints <= 0 means 200.
// Counter and histogram points are delta-aware across the stride: a
// point's Rate/Count/percentiles describe the step since the previous
// emitted point (or the last sample before the window for the first),
// with a cumulative decrease read as a counter reset.
func (st *Store) Query(names []string, since, until time.Time, maxPoints int) []SeriesData {
	if maxPoints <= 0 {
		maxPoints = 200
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(names) == 0 {
		names = st.order
	}
	lo, hi := since.UnixNano(), until.UnixNano()
	var out []SeriesData
	for _, name := range names {
		s := st.series[name]
		if s == nil {
			continue
		}
		out = append(out, st.querySeries(s, lo, hi, maxPoints))
	}
	return out
}

// windowIndex locates the in-window sample index range [i0, i1) of s
// for (lo, hi] and the index of the baseline sample (the last sample
// at or before lo; -1 when none).
func (s *series) windowIndex(lo, hi int64) (i0, i1, base int) {
	// Samples are time-ordered; binary search both edges.
	i0 = sort.Search(s.n, func(i int) bool { return s.t[s.at(i)] > lo })
	i1 = sort.Search(s.n, func(i int) bool { return s.t[s.at(i)] > hi })
	return i0, i1, i0 - 1
}

func (st *Store) querySeries(s *series, lo, hi int64, maxPoints int) SeriesData {
	sd := SeriesData{Name: s.name, Kind: s.kind.String()}
	i0, i1, base := s.windowIndex(lo, hi)
	n := i1 - i0
	if n <= 0 {
		return sd
	}
	stride := (n + maxPoints - 1) / maxPoints
	prev := base // index of the previous emitted (or baseline) sample
	for i := i0 + stride - 1; i < i1; i += stride {
		slot := s.at(i)
		p := Point{T: s.t[slot] / int64(time.Millisecond)}
		switch s.kind {
		case Gauge:
			p.V = s.v[slot]
		case Counter:
			p.V = s.v[slot]
			d, dt := s.counterDelta(prev, i)
			if dt > 0 {
				p.Rate = d / dt.Seconds()
			}
		case Histogram:
			counts, dt := s.histDelta(prev, i)
			for _, c := range counts {
				p.Count += c
			}
			if dt > 0 {
				p.Rate = float64(p.Count) / dt.Seconds()
			}
			if p.Count > 0 {
				p.P50 = obs.HistQuantile(s.bounds, counts, 0.50)
				p.P95 = obs.HistQuantile(s.bounds, counts, 0.95)
				p.P99 = obs.HistQuantile(s.bounds, counts, 0.99)
			}
		}
		sd.Points = append(sd.Points, p)
		prev = i
	}
	return sd
}

// counterDelta sums the reset-aware value increase from sample index
// from (exclusive; -1 for "window start, no baseline") to sample
// index to (inclusive), along with the elapsed time. A sample whose
// cumulative value is below its predecessor's marks a restart: the
// post-reset sample contributes its full value (counted from zero).
func (s *series) counterDelta(from, to int) (delta float64, dt time.Duration) {
	if to < 0 || to >= s.n {
		return 0, 0
	}
	var t0 int64
	var prevV float64
	havePrev := false
	if from >= 0 {
		slot := s.at(from)
		t0, prevV, havePrev = s.t[slot], s.v[slot], true
	} else {
		t0 = s.t[s.at(0)] // best effort: window start unknown
	}
	for i := from + 1; i <= to; i++ {
		v := s.v[s.at(i)]
		if !havePrev {
			// First sample ever seen in the ring: its cumulative total
			// predates the window, so it only establishes the baseline.
			prevV, havePrev = v, true
			t0 = s.t[s.at(i)]
			continue
		}
		if v >= prevV {
			delta += v - prevV
		} else {
			delta += v // counter reset: count from zero
		}
		prevV = v
	}
	return delta, time.Duration(s.t[s.at(to)] - t0)
}

// histDelta returns the per-bucket observation counts between sample
// index from (exclusive; -1 for no baseline) and to (inclusive),
// reset-aware per snapshot pair: when any bucket decreased the whole
// snapshot is post-restart and contributes wholesale.
func (s *series) histDelta(from, to int) (counts []int64, dt time.Duration) {
	if to < 0 || to >= s.n {
		return nil, 0
	}
	counts = make([]int64, len(s.bounds)+1)
	var prev []int64
	var t0 int64
	if from >= 0 {
		slot := s.at(from)
		prev, t0 = s.h[slot], s.t[slot]
	}
	for i := from + 1; i <= to; i++ {
		slot := s.at(i)
		cur := s.h[slot]
		if prev == nil {
			// First sample in the ring: baseline only, like counters.
			prev, t0 = cur, s.t[slot]
			continue
		}
		reset := len(prev) != len(cur)
		for b := 0; !reset && b < len(cur); b++ {
			reset = cur[b] < prev[b]
		}
		for b := range cur {
			if reset {
				counts[b] += cur[b]
			} else {
				counts[b] += cur[b] - prev[b]
			}
		}
		prev = cur
	}
	return counts, time.Duration(s.t[s.at(to)] - t0)
}

// CounterWindow returns the reset-aware increase of a counter series
// over the window ending at now, and whether the series had any
// in-window samples.
func (st *Store) CounterWindow(name string, now time.Time, w time.Duration) (float64, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := st.series[name]
	if s == nil || s.kind != Counter {
		return 0, false
	}
	i0, i1, base := s.windowIndex(now.Add(-w).UnixNano(), now.UnixNano())
	if i1 <= i0 {
		return 0, false
	}
	d, _ := s.counterDelta(base, i1-1)
	return d, true
}

// HistWindow returns a histogram series' per-bucket observation
// counts over the window ending at now, with its bucket bounds.
func (st *Store) HistWindow(name string, now time.Time, w time.Duration) (bounds []float64, counts []int64, ok bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := st.series[name]
	if s == nil || s.kind != Histogram {
		return nil, nil, false
	}
	i0, i1, base := s.windowIndex(now.Add(-w).UnixNano(), now.UnixNano())
	if i1 <= i0 {
		return nil, nil, false
	}
	counts, _ = s.histDelta(base, i1-1)
	return s.bounds, counts, true
}

// GaugeWindow returns a gauge series' average, maximum and latest
// value over the window ending at now, and the in-window sample
// count.
func (st *Store) GaugeWindow(name string, now time.Time, w time.Duration) (avg, max, last float64, n int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := st.series[name]
	if s == nil || s.kind != Gauge {
		return 0, 0, 0, 0
	}
	i0, i1, _ := s.windowIndex(now.Add(-w).UnixNano(), now.UnixNano())
	sum := 0.0
	for i := i0; i < i1; i++ {
		v := s.v[s.at(i)]
		sum += v
		if n == 0 || v > max {
			max = v
		}
		last = v
		n++
	}
	if n > 0 {
		avg = sum / float64(n)
	}
	return avg, max, last, n
}

// Percentiles summarizes a histogram series over the window ending at
// now: observation count plus p50/p95/p99 by exact within-bucket
// interpolation.
func (st *Store) Percentiles(name string, now time.Time, w time.Duration) (count int64, p50, p95, p99 float64, ok bool) {
	bounds, counts, ok := st.HistWindow(name, now, w)
	if !ok {
		return 0, 0, 0, 0, false
	}
	for _, c := range counts {
		count += c
	}
	if count == 0 {
		return 0, 0, 0, 0, true
	}
	return count,
		obs.HistQuantile(bounds, counts, 0.50),
		obs.HistQuantile(bounds, counts, 0.95),
		obs.HistQuantile(bounds, counts, 0.99),
		true
}
