package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// sampleNow drives one timeline tick by hand; tests never start the
// sampler goroutine, so SLO state changes exactly when they say so.
func sampleNow(t *testing.T, svc *Service) {
	t.Helper()
	svc.Timeline().Sample()
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

// TestTimelineEndpoints drives real traffic, samples, and checks
// /debug/timeline serves the scraped series and /debug/slo the
// windowed percentiles.
func TestTimelineEndpoints(t *testing.T) {
	svc := New(Config{MaxConcurrent: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	sampleNow(t, svc) // baseline tick before any traffic
	for i := 0; i < 3; i++ {
		if resp, b := post(t, srv.URL+"/v1/analyze", `{"circuit":"s208"}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze: %d %s", resp.StatusCode, b)
		}
	}
	sampleNow(t, svc)

	var tl TimelineResponse
	getJSON(t, srv.URL+"/debug/timeline?window=1m", &tl)
	if tl.Samples != 2 {
		t.Errorf("samples = %d, want 2", tl.Samples)
	}
	byName := map[string]int{}
	for _, sd := range tl.Series {
		byName[sd.Name] = len(sd.Points)
	}
	for _, want := range []string{
		"req.total.count", "req.spsta.count", "req.total.latency",
		"pool.queue_depth", "pool.rejected", "cache.lookups",
		"runtime.goroutines", "cost",
	} {
		if byName[want] == 0 {
			t.Errorf("series %s missing or empty in /debug/timeline (have %v)", want, byName)
		}
	}

	// Series filtering and point capping.
	getJSON(t, srv.URL+"/debug/timeline?series=req.total.count&points=1", &tl)
	if len(tl.Series) != 1 || tl.Series[0].Name != "req.total.count" || len(tl.Series[0].Points) != 1 {
		t.Errorf("filtered query returned %+v", tl.Series)
	}
	// The three analyze requests show up as the windowed count.
	if resp, err := http.Get(srv.URL + "/debug/timeline?window=bogus"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window accepted: %v", resp.Status)
	} else {
		resp.Body.Close()
	}

	var slo SLOResponse
	getJSON(t, srv.URL+"/debug/slo?window=1m", &slo)
	if len(slo.Burning) != 0 {
		t.Errorf("healthy service burning: %v", slo.Burning)
	}
	if len(slo.Objectives) == 0 {
		t.Fatal("no objectives in /debug/slo")
	}
	var total *LatencySummary
	for i := range slo.Latency {
		if slo.Latency[i].Series == "req.total.latency" {
			total = &slo.Latency[i]
		}
	}
	if total == nil || total.Count != 3 {
		t.Fatalf("req.total.latency summary = %+v, want count 3", total)
	}
	if total.P99 < total.P50 || total.P50 <= 0 {
		t.Errorf("interpolated percentiles out of order: p50 %g p99 %g", total.P50, total.P99)
	}
}

// TestSLOForcedViolationAutoCapture occupies every worker slot so
// requests reject instantly, samples the violation, and asserts the
// burn fires, the capture bundle lands under DebugDir with all its
// artifacts, and /debug/captures serves them.
func TestSLOForcedViolationAutoCapture(t *testing.T) {
	dir := t.TempDir()
	svc := New(Config{
		MaxConcurrent: 1,
		MaxQueue:      -1, // no queue: a busy service rejects instantly
		DebugDir:      dir,
		CaptureCPU:    50 * time.Millisecond,
	})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	sampleNow(t, svc) // baseline

	// Occupy the only slot, then hammer: every request is a 429.
	svc.slots <- struct{}{}
	for i := 0; i < 10; i++ {
		resp, _ := post(t, srv.URL+"/v1/analyze", `{"circuit":"s208"}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("expected 429 with slots full, got %d", resp.StatusCode)
		}
	}
	sampleNow(t, svc) // evaluation tick: rejection objective burns

	burning := svc.Timeline().SLO().Burning()
	found := false
	for _, name := range burning {
		found = found || name == objRejection
	}
	if !found {
		t.Fatalf("rejection objective not burning after forced 429s (burning: %v)", burning)
	}

	// The capture goroutine writes meta.json last; wait for it.
	var bundle string
	deadline := time.Now().Add(10 * time.Second)
	for bundle == "" && time.Now().Before(deadline) {
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if _, err := os.Stat(filepath.Join(dir, e.Name(), "meta.json")); err == nil {
				bundle = e.Name()
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if bundle == "" {
		t.Fatal("no complete capture bundle appeared")
	}
	for _, f := range []string{"cpu.pprof", "heap.pprof", "flight.json", "timeline.json", "slo.json", "meta.json"} {
		fi, err := os.Stat(filepath.Join(dir, bundle, f))
		if err != nil || fi.Size() == 0 {
			t.Errorf("bundle artifact %s missing or empty: %v", f, err)
		}
	}

	// The bundle's timeline window shows the rejection counter moving.
	var tlBundle TimelineResponse
	raw, err := os.ReadFile(filepath.Join(dir, bundle, "timeline.json"))
	if err != nil || json.Unmarshal(raw, &tlBundle) != nil {
		t.Fatalf("bundle timeline.json unreadable: %v", err)
	}
	sawRejected := false
	for _, sd := range tlBundle.Series {
		if sd.Name == seriesRejected && len(sd.Points) > 0 && sd.Points[len(sd.Points)-1].V >= 10 {
			sawRejected = true
		}
	}
	if !sawRejected {
		t.Error("bundle timeline window does not show the rejected counter at >= 10")
	}

	// /debug/captures lists the bundle complete and serves artifacts.
	var caps struct {
		Captures []CaptureInfo `json:"captures"`
	}
	getJSON(t, srv.URL+"/debug/captures", &caps)
	if len(caps.Captures) == 0 || !caps.Captures[0].Complete {
		t.Fatalf("captures listing = %+v, want one complete bundle", caps.Captures)
	}
	resp, err := http.Get(srv.URL + "/debug/captures/" + bundle + "/meta.json")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("capture artifact fetch failed: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	if resp, err := http.Get(srv.URL + "/debug/captures/../escape/meta.json"); err == nil {
		// Path traversal must not reach the filesystem. Go's mux
		// already cleans the path; anything that gets through must 400.
		if resp.StatusCode == http.StatusOK {
			t.Error("path traversal served a file")
		}
		resp.Body.Close()
	}

	// Prometheus exposes the burn.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := new(strings.Builder)
	if _, err := io.Copy(mb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if !strings.Contains(mb.String(), `spstad_slo_burning{objective="rejection-rate"} 1`) {
		t.Error("spstad_slo_burning{objective=\"rejection-rate\"} not 1 in /metrics")
	}
	if !strings.Contains(mb.String(), "spstad_slo_captures_total 1") {
		t.Error("spstad_slo_captures_total not 1 in /metrics")
	}

	// A request finishing during the incident carries it in its
	// flight-recorder summary.
	<-svc.slots // release the slot
	if resp, b := post(t, srv.URL+"/v1/analyze", `{"circuit":"s208"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-incident analyze: %d %s", resp.StatusCode, b)
	}
	var flight struct {
		Requests []RequestSummary `json:"requests"`
	}
	getJSON(t, srv.URL+"/debug/requests", &flight)
	if len(flight.Requests) == 0 {
		t.Fatal("flight recorder empty")
	}
	newest := flight.Requests[0]
	hasRej := false
	for _, name := range newest.SLOBurning {
		hasRej = hasRej || name == objRejection
	}
	if !hasRej {
		t.Errorf("newest flight summary slo_burning = %v, want %s", newest.SLOBurning, objRejection)
	}
}

// TestSLOP99AgreesWithClientMeasurement checks the acceptance
// contract: /debug/slo's interpolated p99 for req.total.latency lands
// within one histogram bucket of the client-side measured p99.
func TestSLOP99AgreesWithClientMeasurement(t *testing.T) {
	svc := New(Config{MaxConcurrent: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Warm up before the baseline sample so first-request setup cost
	// (netlist generation, cache fill) stays out of the measured window
	// on both sides. The measured requests are cold Monte Carlo runs:
	// tens of milliseconds of server compute each, so the client-side
	// transport overhead (a few ms) is small against the bucket width
	// at that latency range.
	post(t, srv.URL+"/v1/analyze", `{"circuit":"s1196","engine":"mc","runs":3000,"seed":999}`)
	sampleNow(t, svc)
	var counts [len(latencyBounds) + 1]int64
	for i := 0; i < 30; i++ {
		t0 := time.Now()
		body := fmt.Sprintf(`{"circuit":"s1196","engine":"mc","runs":3000,"seed":%d}`, i+1)
		if resp, b := post(t, srv.URL+"/v1/analyze", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze: %d %s", resp.StatusCode, b)
		}
		counts[bucketIndex(time.Since(t0).Seconds())]++
	}
	sampleNow(t, svc)

	// Run the client measurements through the same bucket+interpolation
	// estimator the server uses, so the comparison isolates the
	// client/server latency gap rather than quantile-definition
	// differences (nearest-rank vs interpolated).
	clientP99 := obs.HistQuantile(latencyBounds[:], counts[:], 0.99)

	var slo SLOResponse
	getJSON(t, srv.URL+"/debug/slo?window=1m", &slo)
	var serverP99 float64
	for _, ls := range slo.Latency {
		if ls.Series == "req.total.latency" {
			serverP99 = ls.P99
		}
	}
	if serverP99 <= 0 {
		t.Fatal("no server-side p99 for req.total.latency")
	}

	// Client latency includes HTTP client overhead the server never
	// sees, so exact equality is impossible; the contract is bucket
	// resolution — the two estimates land in the same or adjacent
	// latency buckets.
	ci, si := bucketIndex(clientP99), bucketIndex(serverP99)
	if d := ci - si; d < -1 || d > 1 {
		t.Errorf("client p99 %.4fs (bucket %d) vs server p99 %.4fs (bucket %d): more than one bucket apart",
			clientP99, ci, serverP99, si)
	}
}

func bucketIndex(v float64) int {
	i := 0
	for i < len(latencyBounds) && v > latencyBounds[i] {
		i++
	}
	return i
}

// TestFlightSinceFilter pins the ?since= time filter on
// /debug/requests in its three accepted spellings.
func TestFlightSinceFilter(t *testing.T) {
	svc := New(Config{MaxConcurrent: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post(t, srv.URL+"/v1/analyze", `{"circuit":"s208"}`)
	time.Sleep(10 * time.Millisecond)
	cut := time.Now()
	time.Sleep(10 * time.Millisecond)
	post(t, srv.URL+"/v1/analyze", `{"circuit":"s208","engine":"moment"}`)

	var out struct {
		Total    int64            `json:"total_recorded"`
		Requests []RequestSummary `json:"requests"`
	}
	getJSON(t, srv.URL+"/debug/requests", &out)
	if len(out.Requests) != 2 || out.Total != 2 {
		t.Fatalf("unfiltered list: %d requests, total %d", len(out.Requests), out.Total)
	}

	getJSON(t, srv.URL+"/debug/requests?since="+cut.UTC().Format("2006-01-02T15:04:05.999999999Z07:00"), &out)
	if len(out.Requests) != 1 || out.Requests[0].Engine != "moment" {
		t.Fatalf("RFC3339 since filter returned %+v", out.Requests)
	}
	if out.Total != 2 {
		t.Errorf("total_recorded = %d, want the unfiltered 2", out.Total)
	}

	// Duration spelling: everything within the last hour.
	getJSON(t, srv.URL+"/debug/requests?since=1h", &out)
	if len(out.Requests) != 2 {
		t.Errorf("duration since filter returned %d requests, want 2", len(out.Requests))
	}

	// Unix-seconds spelling.
	if resp, err := http.Get(srv.URL + "/debug/requests?since=not-a-time"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since accepted: %v", resp.Status)
	} else {
		resp.Body.Close()
	}
	ts, err := parseSince("1700000000", time.Now())
	if err != nil || ts.Unix() != 1700000000 {
		t.Errorf("unix-seconds parse = %v, %v", ts, err)
	}
}

// TestTimelineDisabledSampler: with TimelineInterval zero the store
// exists but takes no automatic samples; Close is still clean.
func TestTimelineDisabledSampler(t *testing.T) {
	svc := New(Config{MaxConcurrent: 1})
	if svc.Timeline().Samples() != 0 {
		t.Errorf("samples = %d before any Sample call", svc.Timeline().Samples())
	}
	svc.Close()
}
