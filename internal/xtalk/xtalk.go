// Package xtalk implements statistical crosstalk aggressor-alignment
// analysis, the paper's central motivating effect (Section 1,
// references [6, 7]): a victim net's delay changes only when an
// aggressor switches within an alignment window of the victim's own
// transition — opposite-direction overlap slows the victim (Miller
// capacitance doubling), same-direction overlap speeds it up.
//
// SSTA cannot express "the probability that two signals arrive at
// about the same time"; it must assume worst-case alignment. SPSTA's
// t.o.p. functions give exactly that probability: this package
// computes the alignment probabilities and the resulting victim
// arrival mixture from a core.Result, and quantifies the pessimism
// of the always-aligned worst case.
package xtalk

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/ssta"
)

// Coupling describes one aggressor→victim capacitive coupling.
type Coupling struct {
	// Victim is the net whose transitions are affected.
	Victim netlist.NodeID
	// Aggressor is the coupled neighbouring net.
	Aggressor netlist.NodeID
	// Window is the alignment half-width: the coupling is active
	// when |t_victim − t_aggressor| ≤ Window.
	Window float64
	// Slowdown is the delay added to the victim when the aggressor
	// switches in the opposite direction within the window.
	Slowdown float64
	// Speedup is the delay subtracted when the aggressor switches
	// in the same direction within the window.
	Speedup float64
}

// Validate checks the coupling parameters.
func (cp Coupling) Validate() error {
	if cp.Window < 0 {
		return fmt.Errorf("xtalk: negative window %v", cp.Window)
	}
	if cp.Slowdown < 0 || cp.Speedup < 0 {
		return fmt.Errorf("xtalk: negative slowdown/speedup")
	}
	return nil
}

// Analysis is the crosstalk-adjusted view of one victim transition
// direction.
type Analysis struct {
	Victim netlist.NodeID
	Dir    ssta.Dir
	// POpposite and PSame are the probabilities, conditioned on the
	// victim transitioning, that an opposite- or same-direction
	// aggressor transition lands inside the alignment window.
	POpposite, PSame float64
	// Adjusted is the crosstalk-adjusted victim t.o.p. (same total
	// mass as the base t.o.p.).
	Adjusted *dist.PMF
	// BaseMean/AdjustedMean summarize the conditional arrival mean
	// before and after the adjustment; WorstCaseMean is the
	// always-aligned SSTA-style assumption (base + full slowdown).
	BaseMean, AdjustedMean, WorstCaseMean float64
}

// Analyze computes the crosstalk-adjusted arrival for one coupling
// from a base SPSTA result, treating victim and aggressor switching
// times as independent (the analyzer's standing assumption):
//
//	P(opposite overlap | victim at t) = Σ_{|s−t|≤W} top_agg,opp(s)
//
// and the adjusted t.o.p. is the mixture of the unshifted,
// +Slowdown-shifted and −Speedup-shifted victim masses weighted by
// the per-bin alignment probabilities.
func Analyze(base *core.Result, cp Coupling, d ssta.Dir) (*Analysis, error) {
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	if int(cp.Victim) < 0 || int(cp.Victim) >= len(base.State) ||
		int(cp.Aggressor) < 0 || int(cp.Aggressor) >= len(base.State) {
		return nil, fmt.Errorf("xtalk: coupling nets out of range")
	}
	g := base.Grid
	victim := base.TOP(cp.Victim, d)
	// Opposite/same aggressor direction relative to the victim's.
	oppDir, sameDir := ssta.DirFall, ssta.DirRise
	if d == ssta.DirFall {
		oppDir, sameDir = ssta.DirRise, ssta.DirFall
	}
	opp := base.TOP(cp.Aggressor, oppDir)
	same := base.TOP(cp.Aggressor, sameDir)

	wBins := int(cp.Window / g.Dt)
	windowMass := func(p *dist.PMF, k int) float64 {
		lo, hi := k-wBins, k+wBins
		if lo < 0 {
			lo = 0
		}
		if hi > g.N-1 {
			hi = g.N - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += p.W(j)
		}
		return s
	}

	adjusted := dist.NewPMF(g)
	mass := victim.Mass()
	var pOpp, pSame float64
	var baseMean float64
	for k := 0; k < g.N; k++ {
		v := victim.W(k)
		if v == 0 {
			continue
		}
		po := windowMass(opp, k)
		ps := windowMass(same, k)
		// An aggressor can do only one of the two in a cycle; joint
		// overlap of both directions is impossible (one transition
		// per cycle), so the probabilities partition.
		stay := 1 - po - ps
		if stay < 0 {
			stay = 0
		}
		pOpp += v * po
		pSame += v * ps
		baseMean += v * g.X(k)
		adjusted.AccumWeighted(binDelta(g, k, 0), v*stay)
		if po > 0 {
			adjusted.AccumWeighted(binDelta(g, k, cp.Slowdown), v*po)
		}
		if ps > 0 {
			adjusted.AccumWeighted(binDelta(g, k, -cp.Speedup), v*ps)
		}
	}
	a := &Analysis{Victim: cp.Victim, Dir: d, Adjusted: adjusted}
	if mass > 0 {
		a.POpposite = pOpp / mass
		a.PSame = pSame / mass
		a.BaseMean = baseMean / mass
		a.AdjustedMean = adjusted.Mean()
		a.WorstCaseMean = a.BaseMean + cp.Slowdown
	}
	return a, nil
}

// binDelta returns a unit point mass at bin k shifted by offset.
func binDelta(g dist.Grid, k int, offset float64) *dist.PMF {
	return dist.Delta(g, g.X(k)+offset)
}

// Pessimism returns the worst-case-minus-actual mean delay gap: how
// much the always-aligned assumption overestimates the victim's
// expected arrival.
func (a *Analysis) Pessimism() float64 { return a.WorstCaseMean - a.AdjustedMean }

// MeanShift returns the crosstalk-induced change of the victim's
// conditional mean arrival.
func (a *Analysis) MeanShift() float64 { return a.AdjustedMean - a.BaseMean }

// AlignmentProbability returns P(any aggressor overlap | victim
// transitions).
func (a *Analysis) AlignmentProbability() float64 { return a.POpposite + a.PSame }

// AnalyzeAll runs Analyze for both victim directions of every
// coupling.
func AnalyzeAll(base *core.Result, cps []Coupling) ([]*Analysis, error) {
	var out []*Analysis
	for _, cp := range cps {
		for _, d := range []ssta.Dir{ssta.DirRise, ssta.DirFall} {
			a, err := Analyze(base, cp, d)
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		}
	}
	return out, nil
}

// ExpectedDeltaDelay returns the victim's probability-weighted delay
// change over a whole cycle (including non-switching cycles): the
// quantity a crosstalk-aware incremental timer adds to the victim's
// mean stage delay.
func ExpectedDeltaDelay(base *core.Result, cp Coupling) (float64, error) {
	total := 0.0
	for _, d := range []ssta.Dir{ssta.DirRise, ssta.DirFall} {
		a, err := Analyze(base, cp, d)
		if err != nil {
			return 0, err
		}
		v := logic.Rise
		if d == ssta.DirFall {
			v = logic.Fall
		}
		total += base.Probability(cp.Victim, v) * a.MeanShift()
	}
	return total, nil
}
