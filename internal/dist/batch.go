package dist

import (
	"math"
	"sync"
)

// ConvPlan precomputes the bin-split tables of the direct convolution
// kernel for one grid. The direct kernel places the product mass of
// bin centers i and j at fractional bin k = i + j + off
// (off = Lo/Dt + 1/2) and splits it linearly between floor(k) and
// floor(k)+1; floor, the split fraction and its complement depend
// only on the center-sum s = i + j, so one table over s ∈ [0, 2N−2]
// serves every convolution of the run. The plan also notes whether
// floor(s + off) advances by exactly one bin per unit of s (contig) —
// true for every real grid; the theoretical exception is a grid whose
// off sits within half an ulp of an integer — which is what lets the
// batch kernel process a whole source row against two table slices
// with no per-pair floor, branch, or bounds test.
//
// Plans are read-only after construction and safe for concurrent use.
type ConvPlan struct {
	grid   Grid
	base   []int32   // floor(s + off)
	one    []float64 // 1 − frac(s + off)
	frc    []float64 // frac(s + off)
	contig bool
}

// NewConvPlan builds the split tables for grid g.
func NewConvPlan(g Grid) *ConvPlan {
	ns := 2*g.N - 1
	if ns < 1 {
		ns = 1
	}
	pl := &ConvPlan{
		grid: g,
		base: make([]int32, ns),
		one:  make([]float64, ns),
		frc:  make([]float64, ns),
	}
	off := g.Lo/g.Dt + 0.5
	for s := 0; s < ns; s++ {
		k := float64(s) + off
		b := math.Floor(k)
		pl.base[s] = int32(b)
		pl.frc[s] = k - b
		pl.one[s] = 1 - pl.frc[s]
	}
	pl.contig = true
	for s := 1; s < ns; s++ {
		if pl.base[s] != pl.base[s-1]+1 {
			pl.contig = false
			break
		}
	}
	return pl
}

// Grid returns the grid the plan was built for.
func (pl *ConvPlan) Grid() Grid { return pl.grid }

// planKey identifies one cached ConvPlan: grid geometry plus storage
// precision, the same identity KernelCache keys on. The tables depend
// on geometry only, but keeping precision in the key means a run's
// plan lookups mirror its kernel lookups one for one.
type planKey struct {
	lo, dt float64
	n      int
	prec   Precision
}

// convPlans caches split-table plans by grid for the process
// lifetime, like fftPlans: plans are immutable once built and shared
// freely, so each (geometry, precision) — each resolution level of a
// coarsening run included — builds its tables once per process. The
// per-run hit/miss counters ride on the requesting grid's metrics
// handle; the cached plan itself carries a metrics-free grid so a
// plan built under one request's scope never records into another's
// (the convolution kernels read the operand grid's handle, not the
// plan's).
var convPlans sync.Map // planKey → *ConvPlan

// PlanFor returns the (possibly cached) convolution plan for g,
// recording a plan-cache hit or miss on g's metrics handle.
func PlanFor(g Grid) *ConvPlan {
	key := planKey{lo: g.Lo, dt: g.Dt, n: g.N, prec: g.Precision}
	m := g.met
	if v, ok := convPlans.Load(key); ok {
		if m != nil {
			m.ConvPlanHits.Add(1)
		}
		return v.(*ConvPlan)
	}
	if m != nil {
		m.ConvPlanMisses.Add(1)
	}
	pl := NewConvPlan(g.WithMetrics(nil))
	if v, loaded := convPlans.LoadOrStore(key, pl); loaded {
		return v.(*ConvPlan)
	}
	return pl
}

// ConvolveInto is the plan-driven equivalent of p.ConvolveInto(dst, q):
// same FFT dispatch, same metrics, and a bit-identical result — the
// direct path walks the identical (i, j) pair order with the identical
// floating-point expressions, reading the split factors from the plan
// tables instead of recomputing them per pair. Source rows whose
// destination bins lie fully inside the grid additionally run a
// register-carried form of the inner loop (each destination bin is
// read once and written once per row instead of twice), which
// reassociates nothing: the two adds land in the same order.
func (pl *ConvPlan) ConvolveInto(dst, p, q *PMF) *PMF {
	p.grid.check(q.grid, "Convolve")
	p.grid.check(dst.grid, "Convolve")
	dst.Reset()
	sa, sb := p.hi-p.lo, q.hi-q.lo
	if sa == 0 || sb == 0 {
		return dst
	}
	useFFT := sa >= fftCrossover && sb >= fftCrossover
	if m := p.grid.met; m != nil {
		m.ConvSupport.Observe(sa)
		m.ConvSupport.Observe(sb)
		if useFFT {
			m.ConvFFT.Add(1)
			m.CostBinOps.Add(fftCostUnits(sa + sb - 1))
		} else {
			m.ConvDirect.Add(1)
			m.CostBinOps.Add(int64(sa) * int64(sb))
		}
	}
	if useFFT {
		convolveFFTInto(dst, p, q)
		return dst
	}
	pl.convolveDirect(dst, p, q)
	return dst
}

// convolveDirect is the table-driven direct kernel with per-row
// dispatch between the in-grid fast loop and the clamped fallback.
func (pl *ConvPlan) convolveDirect(dst, p, q *PMF) {
	g := p.grid
	w := dst.w
	nq := q.hi - q.lo
	qs := q.w[q.lo:q.hi]
	clampAdd := func(i int, v float64) {
		if v == 0 {
			return
		}
		if i < 0 {
			i = 0
		}
		if i >= g.N {
			i = g.N - 1
		}
		dst.w[i] += v
		dst.expand(i)
	}
	// firstT/lastT track the destination span of the fast rows; the
	// clamped fallback expands dst itself. The resulting support may
	// over-approximate the realized one (edge bins of a fast row can
	// be zero), which the support invariant permits: bins inside the
	// support may be zero, bins outside are exactly zero.
	firstT, lastT := -1, -1
	for i := p.lo; i < p.hi; i++ {
		a := p.w[i]
		if a == 0 {
			continue
		}
		s0 := i + q.lo
		t0 := int(pl.base[s0])
		if pl.contig && t0 >= 0 && t0+nq < g.N {
			// Fast row: every destination bin [t0, t0+nq] is in-grid
			// and consecutive pairs share a bin, so carry the running
			// bin value in a register across the row. The j-th store
			// is exactly clampAdd(t0+j, m·one) after the previous
			// pair's clampAdd(t0+j, m·frc): same adds, same order.
			ot := pl.one[s0 : s0+nq]
			ft := pl.frc[s0 : s0+nq]
			wrow := w[t0 : t0+nq+1]
			cur := wrow[0]
			for j, b := range qs {
				m := a * b
				cur += m * ot[j]
				wrow[j] = cur
				cur = wrow[j+1] + m*ft[j]
			}
			wrow[nq] = cur
			if firstT < 0 {
				firstT = t0
			}
			lastT = t0
		} else {
			for j, b := range qs {
				if b == 0 {
					continue
				}
				m := a * b
				s := s0 + j
				clampAdd(int(pl.base[s]), m*pl.one[s])
				clampAdd(int(pl.base[s])+1, m*pl.frc[s])
			}
		}
	}
	if firstT >= 0 {
		hi := lastT + nq + 1
		if dst.lo == dst.hi {
			dst.lo, dst.hi = firstT, hi
		} else {
			if firstT < dst.lo {
				dst.lo = firstT
			}
			if hi > dst.hi {
				dst.hi = hi
			}
		}
	}
}

// ShiftBatch translates every src by d into the matching dst (cleared
// first). d == 0 degenerates to a straight copy, matching the serial
// deterministic-delay path bin for bin.
func ShiftBatch(dsts, srcs []*PMF, d float64) {
	for i, src := range srcs {
		if d == 0 {
			dsts[i].CopyFrom(src)
		} else {
			src.ShiftInto(dsts[i], d)
		}
	}
}

// ConvolveBatch convolves every src with the shared kernel q into the
// matching dst using the plan's split tables. The kernel is read-only
// throughout, so cached delay kernels can be passed directly.
func ConvolveBatch(pl *ConvPlan, dsts, srcs []*PMF, q *PMF) {
	for i, src := range srcs {
		pl.ConvolveInto(dsts[i], src, q)
	}
}

// MixtureJob is one weighted-mixture output of a batch: the SPSTA
// non-controlled-direction (max) or controlled-direction (min)
// mixture of a gate, destined for a slab row.
type MixtureJob struct {
	Dst *PMF
	In  []SwitchInput
	Min bool
}

// MixtureBatch evaluates every job in order, writing each mixture
// into its destination row with the same closed-form kernels the
// serial path uses.
func MixtureBatch(jobs []MixtureJob) {
	for i := range jobs {
		j := &jobs[i]
		if j.Min {
			MinMixtureInto(j.Dst, j.In)
		} else {
			MaxMixtureInto(j.Dst, j.In)
		}
	}
}

// QuantizeF32 rounds every support bin of p to its nearest float32 in
// place. The F32 batch path applies it to every stored result so the
// analysis is a function of the rounded values only — reproducible
// whether a bin was produced by the packed float32 loop or by a
// float64 one (shift, FFT).
func (p *PMF) QuantizeF32() {
	for i := p.lo; i < p.hi; i++ {
		p.w[i] = float64(float32(p.w[i]))
	}
}

// ConvolveBatchF32 is the packed-precision variant of ConvolveBatch:
// source rows are read from the slab's float32 mirror (half the
// memory traffic of the float64 rows) and the kernel from q32, the
// float32 mirror of q's support bins (as built by KernelF32).
// Products and bin accumulation stay float64; every stored output bin
// is then rounded to float32 (QuantizeF32), so downstream levels see
// float32-representable values regardless of which loop produced
// them. Wide operands fall back to the float64 FFT path — reading the
// quantized float64 rows, hence the same numbers — before the same
// output rounding.
//
// rows[i] names the slab row backing srcs[i]; srcs[i] must be
// slab.Row(rows[i]) with its float32 mirror current (Quantize).
func ConvolveBatchF32(pl *ConvPlan, dsts []*PMF, slab *Slab, rows []int, srcs []*PMF, q *PMF, q32 []float32) {
	for i, src := range srcs {
		dst := dsts[i]
		src.grid.check(q.grid, "Convolve")
		src.grid.check(dst.grid, "Convolve")
		dst.Reset()
		sa, sb := src.hi-src.lo, q.hi-q.lo
		if sa == 0 || sb == 0 {
			continue
		}
		useFFT := sa >= fftCrossover && sb >= fftCrossover
		if m := src.grid.met; m != nil {
			m.ConvSupport.Observe(sa)
			m.ConvSupport.Observe(sb)
			if useFFT {
				m.ConvFFT.Add(1)
				m.CostBinOps.Add(fftCostUnits(sa + sb - 1))
			} else {
				m.ConvDirect.Add(1)
				m.CostBinOps.Add(int64(sa) * int64(sb))
			}
		}
		if useFFT {
			convolveFFTInto(dst, src, q)
		} else {
			pl.convolveDirectF32(dst, slab.Row32(rows[i]), src.lo, src.hi, q32, q.lo)
		}
		dst.QuantizeF32()
	}
}

// KernelF32 appends the float32 mirror of q's support bins to buf and
// returns it. The kernel PMF itself must already hold
// float32-representable values (KernelCache quantizes kernels it
// discretizes for F32 grids), so the mirror is exact.
func KernelF32(q *PMF, buf []float32) []float32 {
	buf = buf[:0]
	for _, v := range q.w[q.lo:q.hi] {
		buf = append(buf, float32(v))
	}
	return buf
}

// convolveDirectF32 mirrors convolveDirect reading packed float32
// operands: src32 is a full-width float32 row with support [slo, shi),
// q32 the kernel's support bins starting at absolute bin qlo.
func (pl *ConvPlan) convolveDirectF32(dst *PMF, src32 []float32, slo, shi int, q32 []float32, qlo int) {
	g := pl.grid
	w := dst.w
	nq := len(q32)
	clampAdd := func(i int, v float64) {
		if v == 0 {
			return
		}
		if i < 0 {
			i = 0
		}
		if i >= g.N {
			i = g.N - 1
		}
		dst.w[i] += v
		dst.expand(i)
	}
	firstT, lastT := -1, -1
	for i := slo; i < shi; i++ {
		a := float64(src32[i])
		if a == 0 {
			continue
		}
		s0 := i + qlo
		t0 := int(pl.base[s0])
		if pl.contig && t0 >= 0 && t0+nq < g.N {
			ot := pl.one[s0 : s0+nq]
			ft := pl.frc[s0 : s0+nq]
			wrow := w[t0 : t0+nq+1]
			cur := wrow[0]
			for j, b := range q32 {
				m := a * float64(b)
				cur += m * ot[j]
				wrow[j] = cur
				cur = wrow[j+1] + m*ft[j]
			}
			wrow[nq] = cur
			if firstT < 0 {
				firstT = t0
			}
			lastT = t0
		} else {
			for j, b := range q32 {
				if b == 0 {
					continue
				}
				m := a * float64(b)
				s := s0 + j
				clampAdd(int(pl.base[s]), m*pl.one[s])
				clampAdd(int(pl.base[s])+1, m*pl.frc[s])
			}
		}
	}
	if firstT >= 0 {
		hi := lastT + nq + 1
		if dst.lo == dst.hi {
			dst.lo, dst.hi = firstT, hi
		} else {
			if firstT < dst.lo {
				dst.lo = firstT
			}
			if hi > dst.hi {
				dst.hi = hi
			}
		}
	}
}
