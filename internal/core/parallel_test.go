package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/netlist"
	"repro/internal/synth"
)

// TestParallelRunMatchesSerial asserts the tentpole determinism
// contract: a parallel Run is bin-for-bin bit-identical to the serial
// run on every synthetic benchmark circuit, for the plain analyzer
// and for the ExactProbabilities and MIS configurations. Gates within
// a level share no state, so parallelism reorders the schedule but
// never the per-node float arithmetic. Run with -race to also check
// the level barrier (disjoint-slot writes, fanin reads).
func TestParallelRunMatchesSerial(t *testing.T) {
	cs, err := synth.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	configs := []struct {
		name string
		a    Analyzer
	}{
		{"plain", Analyzer{}},
		{"exact", Analyzer{ExactProbabilities: true}},
		{"mis", Analyzer{MIS: misModel}},
	}
	for _, c := range cs {
		in := uniform(c)
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("%s/%s", c.Name, cfg.name), func(t *testing.T) {
				serial, parallel := cfg.a, cfg.a
				serial.Workers = 1
				parallel.Workers = 4
				// Always exercise the pool, even where the cost-aware
				// schedule (or a single-P runtime) would inline.
				parallel.SerialCutoff = -1
				rs, err := serial.Run(c, in)
				if err != nil {
					t.Fatal(err)
				}
				rp, err := parallel.Run(c, in)
				if err != nil {
					t.Fatal(err)
				}
				for id := range rs.State {
					compareNetState(t, c, netlist.NodeID(id), &rs.State[id], &rp.State[id])
				}
			})
		}
	}
}

// compareNetState requires bitwise equality: identical probabilities,
// supports and bin values. Any tolerance here would hide a schedule
// dependence.
func compareNetState(t *testing.T, c *netlist.Circuit, id netlist.NodeID, s, p *NetState) {
	t.Helper()
	name := c.Nodes[id].Name
	for v := range s.P {
		if math.Float64bits(s.P[v]) != math.Float64bits(p.P[v]) {
			t.Fatalf("%s: P[%d]: serial %v parallel %v", name, v, s.P[v], p.P[v])
		}
	}
	for d := range s.TOP {
		st, pt := s.TOP[d], p.TOP[d]
		slo, shi := st.Support()
		plo, phi := pt.Support()
		if slo != plo || shi != phi {
			t.Fatalf("%s: TOP[%d] support: serial [%d,%d) parallel [%d,%d)", name, d, slo, shi, plo, phi)
		}
		for i := 0; i < st.Grid().N; i++ {
			if math.Float64bits(st.W(i)) != math.Float64bits(pt.W(i)) {
				t.Fatalf("%s: TOP[%d] bin %d: serial %v parallel %v", name, d, i, st.W(i), pt.W(i))
			}
		}
	}
}

// TestParallelMomentTimingMatchesSerial is the MomentTiming analog.
func TestParallelMomentTimingMatchesSerial(t *testing.T) {
	cs, err := synth.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		in := uniform(c)
		serial := MomentTiming{Workers: 1}
		parallel := MomentTiming{Workers: 4, SerialCutoff: -1}
		rs, err := serial.Run(c, in)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := parallel.Run(c, in)
		if err != nil {
			t.Fatal(err)
		}
		for id := range rs.State {
			s, p := &rs.State[id], &rp.State[id]
			for v := range s.P {
				if math.Float64bits(s.P[v]) != math.Float64bits(p.P[v]) {
					t.Fatalf("%s %s: P[%d]: %v vs %v", c.Name, c.Nodes[id].Name, v, s.P[v], p.P[v])
				}
			}
			for d := range s.Arr {
				if s.Arr[d] != p.Arr[d] {
					t.Fatalf("%s %s: Arr[%d]: %+v vs %+v", c.Name, c.Nodes[id].Name, d, s.Arr[d], p.Arr[d])
				}
			}
		}
	}
}

// TestParallelErrorDeterministic: the first error in level order is
// returned regardless of worker count. A parity gate wider than the
// cap triggers it.
func TestParallelErrorDeterministic(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\n" +
		"y = XOR(a, b, a, b, a, b, a, b)\n" +
		"z = XOR(b, a, b, a, b, a, b, a)\n"
	c := parse(t, src, "wide-parity")
	in := uniform(c)
	a := Analyzer{MaxParityFanin: 3, Workers: 1}
	_, errSerial := a.Run(c, in)
	if errSerial == nil {
		t.Fatal("expected parity-cap error")
	}
	a.Workers = 4
	a.SerialCutoff = -1
	for i := 0; i < 8; i++ {
		_, errPar := a.Run(c, in)
		if errPar == nil || errPar.Error() != errSerial.Error() {
			t.Fatalf("parallel error %q != serial %q", errPar, errSerial)
		}
	}
}
