package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMixtureMatchesSubsetEnumeration: the O(k·n) product-form
// mixtures equal the literal O(2^k) subset enumeration of Eq. 11.
func TestMixtureMatchesSubsetEnumeration(t *testing.T) {
	g := NewGrid(-3, 3, 0.25)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(4)
		in := make([]SwitchInput, k)
		for i := range in {
			p := randomPMF(g, rng)
			stay := rng.Float64() * (1 - p.Mass())
			in[i] = SwitchInput{Stay: stay, TOP: p}
		}
		for _, max := range []bool{true, false} {
			fast := Mixture(g, in, max)
			ref := SubsetMixture(g, in, max)
			for i := 0; i < g.N; i++ {
				if math.Abs(fast.W(i)-ref.W(i)) > 1e-9 {
					t.Fatalf("trial %d max=%v bin %d: fast %v vs ref %v",
						trial, max, i, fast.W(i), ref.W(i))
				}
			}
		}
	}
}

// TestMixtureTotalMass: total output mass equals
// Π(Stay_i + mass_i) − Π Stay_i, the paper's Eq. 10 form.
func TestMixtureTotalMass(t *testing.T) {
	g := NewGrid(-3, 3, 0.25)
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		k := 1 + rng.Intn(5)
		in := make([]SwitchInput, k)
		all, none := 1.0, 1.0
		for i := range in {
			p := randomPMF(g, rng)
			stay := rng.Float64() * (1 - p.Mass())
			in[i] = SwitchInput{Stay: stay, TOP: p}
			all *= stay + p.Mass()
			none *= stay
		}
		want := all - none
		return math.Abs(MaxMixture(g, in).Mass()-want) < 1e-9 &&
			math.Abs(MinMixture(g, in).Mass()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMixtureSingleInput: with one input the mixture is just its
// t.o.p., regardless of max/min.
func TestMixtureSingleInput(t *testing.T) {
	g := NewGrid(-3, 3, 0.25)
	rng := rand.New(rand.NewSource(7))
	p := randomPMF(g, rng)
	in := []SwitchInput{{Stay: 0.3, TOP: p}}
	for _, max := range []bool{true, false} {
		out := Mixture(g, in, max)
		for i := 0; i < g.N; i++ {
			if math.Abs(out.W(i)-p.W(i)) > 1e-12 {
				t.Fatalf("max=%v bin %d: %v vs %v", max, i, out.W(i), p.W(i))
			}
		}
	}
}

// TestMixturePaperFig4Setup reproduces the Figure 4 configuration:
// a 2-input AND with both inputs at 0.9 probability of being/ending
// one, arrival times same mean but sigma 1 vs 2. The WEIGHTED SUM
// result stays symmetric (zero skew) while the plain MAX does not.
func TestMixturePaperFig4Setup(t *testing.T) {
	g := NewGrid(-10, 10, 1.0/16)
	// Decompose 0.9 "signal probability" as 0.8 constant one + 0.1
	// rising for each input.
	a := FromNormal(g, Normal{0, 1}).Scale(0.1)
	b := FromNormal(g, Normal{0, 2}).Scale(0.1)
	in := []SwitchInput{{Stay: 0.8, TOP: a}, {Stay: 0.8, TOP: b}}
	ws := MaxMixture(g, in)
	// Near-symmetry: the only asymmetric contribution is the
	// both-switching subset at weight 0.1·0.1, so the mean shift
	// stays an order of magnitude below the plain MAX's and the
	// skew is small.
	approx(t, "weighted-sum mean", ws.Mean(), 0, 0.1)
	if skew := pmfSkew(ws); math.Abs(skew) > 0.15 {
		t.Errorf("weighted-sum skewness = %v, want ~0", skew)
	}
	// The pure Eq. 8 two-value weighted sum (no multi-switch MAX
	// term) is exactly symmetric: zero mean, zero skew.
	pure := NewPMF(g)
	pure.AccumWeighted(a, 0.9).AccumWeighted(b, 0.9)
	approx(t, "pure weighted-sum mean", pure.Mean(), 0, 1e-9)
	if skew := pmfSkew(pure); math.Abs(skew) > 1e-9 {
		t.Errorf("pure weighted-sum skewness = %v, want 0", skew)
	}
	// Plain MAX of the two normalized arrivals is right-skewed with
	// a positive mean.
	mx := MaxPMF(a.Clone().Scale(10), b.Clone().Scale(10))
	if mx.Mean() < 0.4 {
		t.Errorf("MAX mean = %v, want clearly positive", mx.Mean())
	}
	if pmfSkew(mx) < 0.1 {
		t.Errorf("MAX skewness = %v, want clearly positive", pmfSkew(mx))
	}
}

// TestMixtureEmptyAndZeroMass: degenerate inputs.
func TestMixtureDegenerate(t *testing.T) {
	g := NewGrid(0, 1, 0.25)
	if m := MaxMixture(g, nil).Mass(); m != 0 {
		t.Errorf("empty mixture mass = %v", m)
	}
	in := []SwitchInput{{Stay: 1, TOP: NewPMF(g)}}
	if m := MaxMixture(g, in).Mass(); m != 0 {
		t.Errorf("never-switching mixture mass = %v", m)
	}
	if m := MinMixture(g, in).Mass(); m != 0 {
		t.Errorf("never-switching min mixture mass = %v", m)
	}
}

// TestMixtureTwoDeltas: hand-computed two-input example with point
// masses. Input 1 switches at t=1 w.p. 0.5, stays w.p. 0.5; input 2
// switches at t=2 w.p. 0.4, stays w.p. 0.6.
func TestMixtureTwoDeltas(t *testing.T) {
	g := NewGrid(0, 4, 1)
	d1 := Delta(g, 1).Scale(0.5)
	d2 := Delta(g, 2).Scale(0.4)
	in := []SwitchInput{{Stay: 0.5, TOP: d1}, {Stay: 0.6, TOP: d2}}
	mx := MaxMixture(g, in)
	// subsets: {1}: 0.5·0.6 @1; {2}: 0.5·0.4 @2; {1,2}: 0.5·0.4 @max=2.
	approx(t, "max @1", mx.W(1), 0.30, 1e-12)
	approx(t, "max @2", mx.W(2), 0.20+0.20, 1e-12)
	mn := MinMixture(g, in)
	// {1}: 0.30 @1; {2}: 0.20 @2; {1,2}: 0.20 @min=1.
	approx(t, "min @1", mn.W(1), 0.50, 1e-12)
	approx(t, "min @2", mn.W(2), 0.20, 1e-12)
}

func pmfSkew(p *PMF) float64 {
	mass := p.Mass()
	if mass == 0 {
		return 0
	}
	mu := p.Mean()
	s := p.Sigma()
	if s == 0 {
		return 0
	}
	m3 := 0.0
	for i := 0; i < p.Grid().N; i++ {
		d := p.Grid().X(i) - mu
		m3 += p.W(i) * d * d * d
	}
	return m3 / mass / (s * s * s)
}
