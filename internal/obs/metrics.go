// Package obs is the engine instrumentation layer: a registry of
// atomic counters and bounded histograms (Metrics) plus a span
// recorder (Tracer) that exports Chrome trace_event JSON.
//
// The layer is always compiled and near-zero-cost when disabled: hot
// paths in dist, core and montecarlo hold a *Metrics / *Tracer —
// threaded through analyzer config and the dist.Grid value — and skip
// every measurement on nil. Enabling instrumentation never changes
// analysis results; counters and spans are observational only, so the
// parallel-vs-serial bit-identity contract holds with instrumentation
// on (asserted by core.TestInstrumentedParallelMatchesSerial).
//
// Registries are request-scoped, not process-global: a Scope bundles
// one Metrics and one optional Tracer, and every concurrent analysis
// carries its own (see scope.go). The kernels that have no config
// struct of their own (dist.PMF convolutions, the scratch pool, the
// kernel cache) read the Metrics pointer riding on the Grid value
// they already receive, so scoping costs one plain field load per
// kernel call — cheaper than the atomic pointer load the old global
// registry needed.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MaxWorkers bounds the per-worker accumulator arrays; worker ids are
// folded modulo MaxWorkers (real worker counts are GOMAXPROCS-sized,
// far below the bound).
const MaxWorkers = 64

// MaxFanin bounds the per-fanin histograms; wider gates fold into the
// last bucket (the analyzers cap enumeration fanin well below this).
const MaxFanin = 32

// pow2Buckets bounds Pow2Hist: bucket i counts values of bit length
// i, i.e. in [2^(i-1), 2^i); values at or beyond 2^(pow2Buckets-1)
// fold into the last bucket. 24 buckets cover supports up to 8M bins.
const pow2Buckets = 24

// Pow2Hist is a bounded power-of-two histogram of non-negative ints.
type Pow2Hist struct {
	b [pow2Buckets]atomic.Int64
}

// Observe counts v into its power-of-two bucket.
func (h *Pow2Hist) Observe(v int) {
	i := bits.Len(uint(v))
	if i >= pow2Buckets {
		i = pow2Buckets - 1
	}
	h.b[i].Add(1)
}

// HistBucket is one non-empty histogram bucket in a Snapshot: Count
// observations in [Lo, Hi].
type HistBucket struct {
	Lo    int   `json:"lo"`
	Hi    int   `json:"hi"`
	Count int64 `json:"count"`
}

func (h *Pow2Hist) snapshot() []HistBucket {
	var out []HistBucket
	for i := range h.b {
		c := h.b[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := 0, 0
		if i > 0 {
			lo, hi = 1<<(i-1), 1<<i-1
		}
		out = append(out, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// FaninHist accumulates per-fanin totals (bucket = fanin, bounded at
// MaxFanin).
type FaninHist struct {
	b [MaxFanin + 1]atomic.Int64
}

// Add accumulates n into the fanin bucket.
func (h *FaninHist) Add(fanin int, n int64) {
	if fanin > MaxFanin {
		fanin = MaxFanin
	}
	if fanin < 0 {
		fanin = 0
	}
	h.b[fanin].Add(n)
}

// FaninBucket is one non-empty fanin bucket in a Snapshot.
type FaninBucket struct {
	Fanin int   `json:"fanin"`
	Count int64 `json:"count"`
}

func (h *FaninHist) snapshot() []FaninBucket {
	var out []FaninBucket
	for i := range h.b {
		if c := h.b[i].Load(); c != 0 {
			out = append(out, FaninBucket{Fanin: i, Count: c})
		}
	}
	return out
}

// levelStat accumulates one level's schedule statistics.
type levelStat struct {
	gates  int64
	wallNS int64
}

// Metrics is the engine metrics registry. All fields are updated with
// atomic operations by the instrumented hot paths; a Snapshot can be
// taken at any time, including mid-run.
type Metrics struct {
	// Kernel cache (dist.KernelCache.FromNormal): Hits found a
	// computed kernel on the fast path, Misses discretized a new one,
	// Races found the entry only after taking the write lock — the
	// lookups that would have re-discretized (and discarded) the
	// kernel before the once-per-key cache.
	KernelHits   atomic.Int64
	KernelMisses atomic.Int64
	KernelRaces  atomic.Int64

	// Convolution (dist.PMF.ConvolveInto): direct O(sa·sb) vs FFT
	// path counts, and a power-of-two histogram of operand support
	// widths (two observations per convolution).
	ConvDirect  atomic.Int64
	ConvFFT     atomic.Int64
	ConvSupport Pow2Hist

	// Scratch pool (dist.getBins): Gets reused a pooled buffer, News
	// allocated a fresh one.
	PoolGets atomic.Int64
	PoolNews atomic.Int64

	// WEIGHTED SUM accounting per gate fanin: MixtureEvals counts
	// closed-form O(k·n) mixture evaluations; SubsetLeaves counts
	// enumerated subset/value-combination leaves (O(2^k) MIS subsets,
	// O(4^k) parity combinations) — the Eq. 8/11/12 cost the closed
	// form avoids.
	MixtureEvals FaninHist
	SubsetLeaves FaninHist

	// ε-bounded pruning (core ErrorBudget > 0): PrunedSubtrees counts
	// branch-and-bound cuts, PrunedLeaves the enumeration leaves those
	// cuts skipped (by gate fanin, the complement of SubsetLeaves),
	// and PrunedMassFP the occurrence mass the cuts removed, in
	// MassFPUnit fixed point (atomic float accumulation without CAS
	// loops). TruncTails counts PMF.TruncateTail calls that removed
	// mass, TruncatedMassFP their removed mass (same fixed point),
	// TruncatedBins a power-of-two histogram of support bins trimmed
	// per call — the support width the downstream kernels no longer
	// visit — and PrunedSupportWidth a power-of-two histogram of the
	// support width remaining after each truncation, the width those
	// kernels still pay for.
	PrunedSubtrees     atomic.Int64
	PrunedLeaves       FaninHist
	PrunedMassFP       atomic.Int64
	TruncTails         atomic.Int64
	TruncatedMassFP    atomic.Int64
	TruncatedBins      Pow2Hist
	PrunedSupportWidth Pow2Hist

	// Batched level scheduler (core Analyzer.Batched): BatchNets is a
	// power-of-two histogram of the batchable-net count per level (one
	// observation per level the batch path executed), FFTPlanHits /
	// FFTPlanMisses count FFT plan-cache lookups (a miss builds the
	// twiddle and bit-reversal tables for a transform size), and
	// SlabBytesReused accumulates the backing bytes a run obtained
	// from the slab pool instead of allocating.
	BatchNets       Pow2Hist
	FFTPlanHits     atomic.Int64
	FFTPlanMisses   atomic.Int64
	ConvPlanHits    atomic.Int64
	ConvPlanMisses  atomic.Int64
	SlabBytesReused atomic.Int64

	// Multi-resolution grid coarsening (DESIGN.md §15): RebinCalls
	// counts PMF re-binning kernel invocations, RebinDeviationFP their
	// summed worst-case deviation bounds (MassFPUnit fixed point),
	// RebinLevels the level boundaries at which a scheduler coarsened
	// the analysis grid, GridBinsPerLevel a power-of-two histogram of
	// the grid bin count each scheduled level ran on (flat without
	// coarsening, stepping down with it), SupportWidthPeak the widest
	// t.o.p. support produced by any net (bins, monotone max), and
	// SlabBytesPeak the largest slab footprint any level allocated or
	// reused (monotone max).
	RebinCalls       atomic.Int64
	RebinLevels      atomic.Int64
	RebinDeviationFP atomic.Int64
	GridBinsPerLevel Pow2Hist
	SupportWidthPeak atomic.Int64
	SlabBytesPeak    atomic.Int64

	// MCRuns counts Monte Carlo runs simulated.
	MCRuns atomic.Int64

	// Deterministic work-unit cost counters (DESIGN.md §14). Each
	// counts abstract units of algorithmic work at the site where the
	// work happens, under the determinism contract: identical
	// (netlist, inputs, ε, σ, engine, batched, precision) runs
	// accumulate identical totals regardless of worker count, wall
	// time, or cross-request cache state. CostBinOps counts PMF bin
	// operations in dist (shift/max/min support widths, sa·sb direct
	// convolution products, the FFT size formula); CostMixtureOps
	// counts closed-form mixture work (k terms × union support width);
	// CostLeafOps counts enumerated subset/parity leaves; CostMCOps
	// counts Monte Carlo node evaluations (runs × topo nodes, plus
	// settle-lane visits in the packed engine).
	CostBinOps     atomic.Int64
	CostMixtureOps atomic.Int64
	CostLeafOps    atomic.Int64
	CostMCOps      atomic.Int64

	// Packed Monte Carlo engine (montecarlo/bitsim.go):
	// MCPackedBlocks counts simulated 64-run blocks,
	// MCPackedSettleLanes counts sparse settle-pass lane visits
	// (gate outputs that transitioned and took the scalar settling
	// arithmetic), MCPackedBlockNS accumulates per-block wall time,
	// and MCScalarFallbacks counts Packed requests that fell back to
	// the scalar engine (CountGlitches / ProbeTimes need per-run
	// event context).
	MCPackedBlocks      atomic.Int64
	MCPackedSettleLanes atomic.Int64
	MCPackedBlockNS     atomic.Int64
	MCScalarFallbacks   atomic.Int64

	// Per-worker busy time and gate counts from the level-parallel
	// schedule (worker id folded modulo MaxWorkers; Monte Carlo
	// shards report under their shard index).
	WorkerBusyNS [MaxWorkers]atomic.Int64
	WorkerGates  [MaxWorkers]atomic.Int64

	mu     sync.Mutex
	levels []levelStat
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// MassFPUnit is the fixed-point quantum used to accumulate
// probability-mass totals in atomic int64 counters: one unit is
// 1e-12 of mass, so per-event masses down to the pruning budgets'
// practical floor register and cumulative totals up to ~9e6 fit.
const MassFPUnit = 1e-12

// MassFP converts a probability mass to fixed-point counter units
// (rounding half up; negative masses clamp to zero).
func MassFP(m float64) int64 {
	if m <= 0 {
		return 0
	}
	return int64(m/MassFPUnit + 0.5)
}

// ObserveMax raises a monotone-max counter to v if v exceeds its
// current value (lock-free CAS loop; concurrent observers converge on
// the true maximum).
func ObserveMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// CostUnits returns the registry's total work-unit cost: the sum of
// the four deterministic cost counters. Nil-safe; 0 on a nil registry.
func (m *Metrics) CostUnits() int64 {
	if m == nil {
		return 0
	}
	return m.CostBinOps.Load() + m.CostMixtureOps.Load() +
		m.CostLeafOps.Load() + m.CostMCOps.Load()
}

// AddWorkerBusy accumulates busy time and one evaluated gate for a
// worker.
func (m *Metrics) AddWorkerBusy(worker int, d time.Duration) {
	m.AddWorkerChunk(worker, 1, int64(d))
}

// AddWorkerChunk accumulates one work chunk for a worker: gates
// evaluated and raw busy nanoseconds (fed from Nanotime readings on
// the metrics-only hot path).
func (m *Metrics) AddWorkerChunk(worker, gates int, ns int64) {
	w := worker % MaxWorkers
	if w < 0 {
		w = 0
	}
	m.WorkerBusyNS[w].Add(ns)
	m.WorkerGates[w].Add(int64(gates))
}

// RecordLevel accumulates one level-barrier interval: gates evaluated
// and wall time between the barriers. Called once per level by the
// scheduling goroutine.
func (m *Metrics) RecordLevel(level, gates int, wall time.Duration) {
	m.mu.Lock()
	for len(m.levels) <= level {
		m.levels = append(m.levels, levelStat{})
	}
	m.levels[level].gates += int64(gates)
	m.levels[level].wallNS += int64(wall)
	m.mu.Unlock()
}

// LevelSnapshot is one level's accumulated schedule statistics.
type LevelSnapshot struct {
	Level  int   `json:"level"`
	Gates  int64 `json:"gates"`
	WallNS int64 `json:"wall_ns"`
}

// WorkerSnapshot is one worker's accumulated busy time.
type WorkerSnapshot struct {
	Worker int   `json:"worker"`
	BusyNS int64 `json:"busy_ns"`
	Gates  int64 `json:"gates"`
}

// Snapshot is the JSON-serializable view of a Metrics registry.
type Snapshot struct {
	KernelCache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
		Races  int64 `json:"races"`
	} `json:"kernel_cache"`
	Convolution struct {
		Direct      int64        `json:"direct"`
		FFT         int64        `json:"fft"`
		SupportHist []HistBucket `json:"support_hist,omitempty"`
	} `json:"convolution"`
	ScratchPool struct {
		Gets int64 `json:"gets"`
		News int64 `json:"news"`
	} `json:"scratch_pool"`
	Mixture struct {
		EvalsByFanin        []FaninBucket `json:"evals_by_fanin,omitempty"`
		SubsetLeavesByFanin []FaninBucket `json:"subset_leaves_by_fanin,omitempty"`
	} `json:"mixture"`
	Pruning struct {
		Subtrees            int64         `json:"subtrees"`
		PrunedLeavesByFanin []FaninBucket `json:"pruned_leaves_by_fanin,omitempty"`
		PrunedMass          float64       `json:"pruned_mass"`
		Truncations         int64         `json:"truncations"`
		TruncatedMass       float64       `json:"truncated_mass"`
		TruncatedBinsHist   []HistBucket  `json:"truncated_bins_hist,omitempty"`
		SupportWidthHist    []HistBucket  `json:"pruned_support_width_hist,omitempty"`
	} `json:"pruning,omitzero"`
	Batch struct {
		NetsHist        []HistBucket `json:"batch_nets_hist,omitempty"`
		FFTPlanHits     int64        `json:"fft_plan_hits"`
		FFTPlanMisses   int64        `json:"fft_plan_misses"`
		ConvPlanHits    int64        `json:"conv_plan_hits"`
		ConvPlanMisses  int64        `json:"conv_plan_misses"`
		SlabBytesReused int64        `json:"slab_bytes_reused"`
	} `json:"batch,omitzero"`
	Grid struct {
		RebinCalls       int64        `json:"rebin_calls"`
		RebinLevels      int64        `json:"rebin_levels"`
		RebinDeviation   float64      `json:"rebin_deviation"`
		BinsPerLevelHist []HistBucket `json:"bins_per_level_hist,omitempty"`
		SupportWidthPeak int64        `json:"support_width_peak"`
		SlabBytesPeak    int64        `json:"slab_bytes_peak"`
	} `json:"grid,omitzero"`
	Cost struct {
		BinOps     int64 `json:"bin_ops"`
		MixtureOps int64 `json:"mixture_ops"`
		LeafOps    int64 `json:"leaf_ops"`
		MCOps      int64 `json:"mc_ops"`
		Total      int64 `json:"total"`
	} `json:"cost,omitzero"`
	MonteCarloRuns   int64 `json:"monte_carlo_runs,omitempty"`
	MonteCarloPacked struct {
		Blocks          int64 `json:"blocks"`
		SettleLanes     int64 `json:"settle_lanes"`
		BlockNS         int64 `json:"block_ns"`
		ScalarFallbacks int64 `json:"scalar_fallbacks"`
	} `json:"monte_carlo_packed,omitzero"`
	Levels  []LevelSnapshot  `json:"levels,omitempty"`
	Workers []WorkerSnapshot `json:"workers,omitempty"`
}

// Snapshot captures the registry's current totals.
func (m *Metrics) Snapshot() *Snapshot {
	s := &Snapshot{}
	s.KernelCache.Hits = m.KernelHits.Load()
	s.KernelCache.Misses = m.KernelMisses.Load()
	s.KernelCache.Races = m.KernelRaces.Load()
	s.Convolution.Direct = m.ConvDirect.Load()
	s.Convolution.FFT = m.ConvFFT.Load()
	s.Convolution.SupportHist = m.ConvSupport.snapshot()
	s.ScratchPool.Gets = m.PoolGets.Load()
	s.ScratchPool.News = m.PoolNews.Load()
	s.Mixture.EvalsByFanin = m.MixtureEvals.snapshot()
	s.Mixture.SubsetLeavesByFanin = m.SubsetLeaves.snapshot()
	s.Pruning.Subtrees = m.PrunedSubtrees.Load()
	s.Pruning.PrunedLeavesByFanin = m.PrunedLeaves.snapshot()
	s.Pruning.PrunedMass = float64(m.PrunedMassFP.Load()) * MassFPUnit
	s.Pruning.Truncations = m.TruncTails.Load()
	s.Pruning.TruncatedMass = float64(m.TruncatedMassFP.Load()) * MassFPUnit
	s.Pruning.TruncatedBinsHist = m.TruncatedBins.snapshot()
	s.Pruning.SupportWidthHist = m.PrunedSupportWidth.snapshot()
	s.Batch.NetsHist = m.BatchNets.snapshot()
	s.Batch.FFTPlanHits = m.FFTPlanHits.Load()
	s.Batch.FFTPlanMisses = m.FFTPlanMisses.Load()
	s.Batch.ConvPlanHits = m.ConvPlanHits.Load()
	s.Batch.ConvPlanMisses = m.ConvPlanMisses.Load()
	s.Batch.SlabBytesReused = m.SlabBytesReused.Load()
	s.Grid.RebinCalls = m.RebinCalls.Load()
	s.Grid.RebinLevels = m.RebinLevels.Load()
	s.Grid.RebinDeviation = float64(m.RebinDeviationFP.Load()) * MassFPUnit
	s.Grid.BinsPerLevelHist = m.GridBinsPerLevel.snapshot()
	s.Grid.SupportWidthPeak = m.SupportWidthPeak.Load()
	s.Grid.SlabBytesPeak = m.SlabBytesPeak.Load()
	s.Cost.BinOps = m.CostBinOps.Load()
	s.Cost.MixtureOps = m.CostMixtureOps.Load()
	s.Cost.LeafOps = m.CostLeafOps.Load()
	s.Cost.MCOps = m.CostMCOps.Load()
	s.Cost.Total = s.Cost.BinOps + s.Cost.MixtureOps + s.Cost.LeafOps + s.Cost.MCOps
	s.MonteCarloRuns = m.MCRuns.Load()
	s.MonteCarloPacked.Blocks = m.MCPackedBlocks.Load()
	s.MonteCarloPacked.SettleLanes = m.MCPackedSettleLanes.Load()
	s.MonteCarloPacked.BlockNS = m.MCPackedBlockNS.Load()
	s.MonteCarloPacked.ScalarFallbacks = m.MCScalarFallbacks.Load()
	m.mu.Lock()
	for i, l := range m.levels {
		s.Levels = append(s.Levels, LevelSnapshot{Level: i, Gates: l.gates, WallNS: l.wallNS})
	}
	m.mu.Unlock()
	for w := 0; w < MaxWorkers; w++ {
		busy, gates := m.WorkerBusyNS[w].Load(), m.WorkerGates[w].Load()
		if busy == 0 && gates == 0 {
			continue
		}
		s.Workers = append(s.Workers, WorkerSnapshot{Worker: w, BusyNS: busy, Gates: gates})
	}
	return s
}

// Reset zeroes every counter, histogram and accumulator.
func (m *Metrics) Reset() {
	m.KernelHits.Store(0)
	m.KernelMisses.Store(0)
	m.KernelRaces.Store(0)
	m.ConvDirect.Store(0)
	m.ConvFFT.Store(0)
	for i := range m.ConvSupport.b {
		m.ConvSupport.b[i].Store(0)
	}
	m.PoolGets.Store(0)
	m.PoolNews.Store(0)
	for i := range m.MixtureEvals.b {
		m.MixtureEvals.b[i].Store(0)
	}
	for i := range m.SubsetLeaves.b {
		m.SubsetLeaves.b[i].Store(0)
	}
	m.PrunedSubtrees.Store(0)
	for i := range m.PrunedLeaves.b {
		m.PrunedLeaves.b[i].Store(0)
	}
	m.PrunedMassFP.Store(0)
	m.TruncTails.Store(0)
	m.TruncatedMassFP.Store(0)
	for i := range m.TruncatedBins.b {
		m.TruncatedBins.b[i].Store(0)
	}
	for i := range m.PrunedSupportWidth.b {
		m.PrunedSupportWidth.b[i].Store(0)
	}
	for i := range m.BatchNets.b {
		m.BatchNets.b[i].Store(0)
	}
	m.FFTPlanHits.Store(0)
	m.FFTPlanMisses.Store(0)
	m.ConvPlanHits.Store(0)
	m.ConvPlanMisses.Store(0)
	m.SlabBytesReused.Store(0)
	m.RebinCalls.Store(0)
	m.RebinLevels.Store(0)
	m.RebinDeviationFP.Store(0)
	for i := range m.GridBinsPerLevel.b {
		m.GridBinsPerLevel.b[i].Store(0)
	}
	m.SupportWidthPeak.Store(0)
	m.SlabBytesPeak.Store(0)
	m.CostBinOps.Store(0)
	m.CostMixtureOps.Store(0)
	m.CostLeafOps.Store(0)
	m.CostMCOps.Store(0)
	m.MCRuns.Store(0)
	m.MCPackedBlocks.Store(0)
	m.MCPackedSettleLanes.Store(0)
	m.MCPackedBlockNS.Store(0)
	m.MCScalarFallbacks.Store(0)
	for w := 0; w < MaxWorkers; w++ {
		m.WorkerBusyNS[w].Store(0)
		m.WorkerGates[w].Store(0)
	}
	m.mu.Lock()
	m.levels = m.levels[:0]
	m.mu.Unlock()
}

// Merge adds every counter, histogram bucket, level and worker total
// of o into s. Aggregators (the spstad /metrics endpoint) use it to
// fold per-request snapshots into a service-lifetime view.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	s.KernelCache.Hits += o.KernelCache.Hits
	s.KernelCache.Misses += o.KernelCache.Misses
	s.KernelCache.Races += o.KernelCache.Races
	s.Convolution.Direct += o.Convolution.Direct
	s.Convolution.FFT += o.Convolution.FFT
	s.Convolution.SupportHist = mergeHist(s.Convolution.SupportHist, o.Convolution.SupportHist)
	s.ScratchPool.Gets += o.ScratchPool.Gets
	s.ScratchPool.News += o.ScratchPool.News
	s.Mixture.EvalsByFanin = mergeFanin(s.Mixture.EvalsByFanin, o.Mixture.EvalsByFanin)
	s.Mixture.SubsetLeavesByFanin = mergeFanin(s.Mixture.SubsetLeavesByFanin, o.Mixture.SubsetLeavesByFanin)
	s.Pruning.Subtrees += o.Pruning.Subtrees
	s.Pruning.PrunedLeavesByFanin = mergeFanin(s.Pruning.PrunedLeavesByFanin, o.Pruning.PrunedLeavesByFanin)
	s.Pruning.PrunedMass += o.Pruning.PrunedMass
	s.Pruning.Truncations += o.Pruning.Truncations
	s.Pruning.TruncatedMass += o.Pruning.TruncatedMass
	s.Pruning.TruncatedBinsHist = mergeHist(s.Pruning.TruncatedBinsHist, o.Pruning.TruncatedBinsHist)
	s.Pruning.SupportWidthHist = mergeHist(s.Pruning.SupportWidthHist, o.Pruning.SupportWidthHist)
	s.Batch.NetsHist = mergeHist(s.Batch.NetsHist, o.Batch.NetsHist)
	s.Batch.FFTPlanHits += o.Batch.FFTPlanHits
	s.Batch.FFTPlanMisses += o.Batch.FFTPlanMisses
	s.Batch.ConvPlanHits += o.Batch.ConvPlanHits
	s.Batch.ConvPlanMisses += o.Batch.ConvPlanMisses
	s.Batch.SlabBytesReused += o.Batch.SlabBytesReused
	s.Grid.RebinCalls += o.Grid.RebinCalls
	s.Grid.RebinLevels += o.Grid.RebinLevels
	s.Grid.RebinDeviation += o.Grid.RebinDeviation
	s.Grid.BinsPerLevelHist = mergeHist(s.Grid.BinsPerLevelHist, o.Grid.BinsPerLevelHist)
	// Peaks aggregate as maxima: the merged view reports the largest
	// support width and slab footprint any merged request reached.
	if o.Grid.SupportWidthPeak > s.Grid.SupportWidthPeak {
		s.Grid.SupportWidthPeak = o.Grid.SupportWidthPeak
	}
	if o.Grid.SlabBytesPeak > s.Grid.SlabBytesPeak {
		s.Grid.SlabBytesPeak = o.Grid.SlabBytesPeak
	}
	s.Cost.BinOps += o.Cost.BinOps
	s.Cost.MixtureOps += o.Cost.MixtureOps
	s.Cost.LeafOps += o.Cost.LeafOps
	s.Cost.MCOps += o.Cost.MCOps
	s.Cost.Total += o.Cost.Total
	s.MonteCarloRuns += o.MonteCarloRuns
	s.MonteCarloPacked.Blocks += o.MonteCarloPacked.Blocks
	s.MonteCarloPacked.SettleLanes += o.MonteCarloPacked.SettleLanes
	s.MonteCarloPacked.BlockNS += o.MonteCarloPacked.BlockNS
	s.MonteCarloPacked.ScalarFallbacks += o.MonteCarloPacked.ScalarFallbacks
	for _, l := range o.Levels {
		for len(s.Levels) <= l.Level {
			s.Levels = append(s.Levels, LevelSnapshot{Level: len(s.Levels)})
		}
		s.Levels[l.Level].Gates += l.Gates
		s.Levels[l.Level].WallNS += l.WallNS
	}
	for _, w := range o.Workers {
		found := false
		for i := range s.Workers {
			if s.Workers[i].Worker == w.Worker {
				s.Workers[i].BusyNS += w.BusyNS
				s.Workers[i].Gates += w.Gates
				found = true
				break
			}
		}
		if !found {
			s.Workers = append(s.Workers, w)
		}
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
}

// mergeHist merges two non-empty-bucket lists keyed by [Lo, Hi].
func mergeHist(a, b []HistBucket) []HistBucket {
	for _, o := range b {
		found := false
		for i := range a {
			if a[i].Lo == o.Lo && a[i].Hi == o.Hi {
				a[i].Count += o.Count
				found = true
				break
			}
		}
		if !found {
			a = append(a, o)
		}
	}
	sort.Slice(a, func(i, j int) bool { return a[i].Lo < a[j].Lo })
	return a
}

// mergeFanin merges two non-empty-bucket lists keyed by fanin.
func mergeFanin(a, b []FaninBucket) []FaninBucket {
	for _, o := range b {
		found := false
		for i := range a {
			if a[i].Fanin == o.Fanin {
				a[i].Count += o.Count
				found = true
				break
			}
		}
		if !found {
			a = append(a, o)
		}
	}
	sort.Slice(a, func(i, j int) bool { return a[i].Fanin < a[j].Fanin })
	return a
}
