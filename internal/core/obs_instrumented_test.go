package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/synth"
)

// TestInstrumentedParallelMatchesSerial asserts that the
// observability layer is purely observational: a parallel Run with
// metrics AND tracing enabled is bin-for-bin bit-identical to an
// uninstrumented serial run. Run with -race to also check that the
// instrumentation's shared state (atomic counters, tracer buffer)
// introduces no races into the level schedule.
func TestInstrumentedParallelMatchesSerial(t *testing.T) {
	c, err := synth.Generate(mustProfile(t, "s349"))
	if err != nil {
		t.Fatal(err)
	}
	in := uniform(c)

	serial := Analyzer{Workers: 1}
	rs, err := serial.Run(c, in)
	if err != nil {
		t.Fatal(err)
	}

	scope := obs.NewTracedScope()
	tr := scope.Tracer

	parallel := Analyzer{Workers: 4, SerialCutoff: -1, Obs: scope}
	rp, err := parallel.Run(c, in)
	if err != nil {
		t.Fatal(err)
	}
	for id := range rs.State {
		compareNetState(t, c, netlist.NodeID(id), &rs.State[id], &rp.State[id])
	}

	snap := scope.Snapshot()
	if snap.KernelCache.Hits == 0 {
		t.Error("instrumented run recorded no kernel-cache hits")
	}
	if len(snap.Levels) == 0 {
		t.Error("instrumented run recorded no level stats")
	}
	gates := int64(0)
	for _, l := range snap.Levels {
		gates += l.Gates
	}
	if gates != int64(len(c.Nodes)) {
		t.Errorf("level stats cover %d gates, circuit has %d nodes", gates, len(c.Nodes))
	}
	if tr.Len() == 0 {
		t.Error("tracer recorded no spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace document has no events")
	}
}

func mustProfile(t *testing.T, name string) synth.Profile {
	t.Helper()
	p, ok := synth.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	return p
}

// TestParallelErrorMidLevelInstrumented places failing gates in the
// middle of a level that also contains succeeding gates: workers keep
// draining the level after the failure, and the reported error must
// deterministically be the first one in level order — with metrics
// and tracing enabled, across repeats, under -race.
func TestParallelErrorMidLevelInstrumented(t *testing.T) {
	// Level 1 holds, in level order: g1 (ok), g2 (fails: parity fanin
	// 4 > cap 3), g3 (fails), g4 (ok). The error must always be g2's.
	src := "INPUT(a)\nINPUT(b)\n" +
		"OUTPUT(g1)\nOUTPUT(g2)\nOUTPUT(g3)\nOUTPUT(g4)\n" +
		"g1 = AND(a, b)\n" +
		"g2 = XOR(a, b, a, b)\n" +
		"g3 = XOR(b, a, b, a)\n" +
		"g4 = OR(a, b)\n"
	c := parse(t, src, "mid-level-fail")
	in := uniform(c)

	a := Analyzer{MaxParityFanin: 3, Workers: 1}
	_, errSerial := a.Run(c, in)
	if errSerial == nil {
		t.Fatal("expected parity-cap error")
	}
	if !strings.Contains(errSerial.Error(), "g2") {
		t.Fatalf("serial error %q does not name g2, the first failing gate in level order", errSerial)
	}

	scope := obs.NewTracedScope()
	tr := scope.Tracer

	a.Workers = 4
	a.SerialCutoff = -1 // dispatch even the small failing level
	a.Obs = scope
	for i := 0; i < 8; i++ {
		_, errPar := a.Run(c, in)
		if errPar == nil || errPar.Error() != errSerial.Error() {
			t.Fatalf("repeat %d: parallel error %q != serial %q", i, errPar, errSerial)
		}
	}
	// All four gates of the failing level ran every repeat: the level
	// drains fully so the error choice cannot depend on worker timing.
	snap := scope.Snapshot()
	gates := int64(0)
	for _, w := range snap.Workers {
		gates += w.Gates
	}
	// 8 parallel repeats × (2 inputs + 4 gates) = 48 evaluations.
	if want := int64(8 * 6); gates != want {
		t.Errorf("workers evaluated %d gates, want %d (every gate of the failing level must run)", gates, want)
	}
	if tr.Len() == 0 {
		t.Error("tracer recorded no spans from failing runs")
	}
}

// TestInstrumentedMomentTimingMatchesSerial is the MomentTiming
// analog of the bit-identical instrumentation contract.
func TestInstrumentedMomentTimingMatchesSerial(t *testing.T) {
	c, err := synth.Generate(mustProfile(t, "s298"))
	if err != nil {
		t.Fatal(err)
	}
	in := uniform(c)

	serial := MomentTiming{Workers: 1}
	rs, err := serial.Run(c, in)
	if err != nil {
		t.Fatal(err)
	}

	parallel := MomentTiming{Workers: 4, SerialCutoff: -1, Obs: obs.NewScope()}
	rp, err := parallel.Run(c, in)
	if err != nil {
		t.Fatal(err)
	}
	for id := range rs.State {
		s, p := &rs.State[id], &rp.State[id]
		for v := range s.P {
			if math.Float64bits(s.P[v]) != math.Float64bits(p.P[v]) {
				t.Fatalf("%s: P[%d]: %v vs %v", c.Nodes[id].Name, v, s.P[v], p.P[v])
			}
		}
		for d := range s.Arr {
			if s.Arr[d] != p.Arr[d] {
				t.Fatalf("%s: Arr[%d]: %+v vs %+v", c.Nodes[id].Name, d, s.Arr[d], p.Arr[d])
			}
		}
	}
}
