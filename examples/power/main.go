// Probabilistic power estimation (the Section 2.2 substrate): signal
// probabilities under independence vs. exact BDD evaluation,
// transition densities, a dynamic power estimate, and the SPSTA
// toggling rates that refine them — validated against Monte Carlo.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	c, err := repro.GenerateBenchmark("s298")
	if err != nil {
		log.Fatal(err)
	}
	in := repro.UniformInputs(c)

	// Launch-point one-probabilities and toggling rates.
	inputP := make(map[repro.NodeID]float64)
	inputRho := make(map[repro.NodeID]float64)
	for _, id := range c.LaunchPoints() {
		st := in[id]
		inputP[id] = st.SignalProbability()
		inputRho[id] = st.TogglingRate()
	}

	// 1. Topological signal probabilities (independence).
	indep := repro.SignalProbabilities(c, inputP)

	// 2. Exact BDD-based probabilities (Section 3.5): correlations
	// from reconvergent fanout included.
	exact, err := repro.ExactSignalProbabilities(c, inputP, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Monte Carlo reference.
	mc, err := repro.SimulateMonteCarlo(c, in, repro.MonteCarloConfig{Runs: 30000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	// 4. SPSTA four-value probabilities give toggling rates.
	spsta, err := repro.AnalyzeSPSTA(c, in)
	if err != nil {
		log.Fatal(err)
	}

	var maxIndepErr, maxExactErr, sumRhoErr float64
	worst := ""
	for _, n := range c.Nodes {
		mcP := mc.SignalProbability(n.ID)
		if e := math.Abs(indep[n.ID] - mcP); e > maxIndepErr {
			maxIndepErr = e
			worst = n.Name
		}
		if e := math.Abs(exact[n.ID] - mcP); e > maxExactErr {
			maxExactErr = e
		}
		sumRhoErr += math.Abs(spsta.TogglingRate(n.ID) - mc.TogglingRate(n.ID))
	}
	fmt.Printf("circuit %s: %d nets\n\n", c.Name, len(c.Nodes))
	fmt.Printf("signal probability vs Monte Carlo (max abs error):\n")
	fmt.Printf("  independence assumption: %.4f (worst at %s)\n", maxIndepErr, worst)
	fmt.Printf("  exact BDD evaluation:    %.4f (sampling noise only)\n\n", maxExactErr)
	fmt.Printf("SPSTA toggling-rate mean abs error vs MC: %.4f\n\n",
		sumRhoErr/float64(len(c.Nodes)))

	// Transition densities and dynamic power.
	rho := repro.TransitionDensities(c, inputP, inputRho)
	const vdd, freq = 1.1, 1e9
	fmt.Printf("dynamic power (Najm densities, Vdd=%.1fV, f=1GHz, unit caps): %.3e\n",
		vdd, repro.DynamicPower(c, rho, vdd, freq))

	// The same estimate from SPSTA's per-net toggling rates, which
	// also account for glitch-filtered four-value propagation.
	spstaRho := make([]float64, len(c.Nodes))
	for _, n := range c.Nodes {
		spstaRho[n.ID] = spsta.TogglingRate(n.ID)
	}
	fmt.Printf("dynamic power (SPSTA toggling rates):                        %.3e\n",
		repro.DynamicPower(c, spstaRho, vdd, freq))

	mcRho := make([]float64, len(c.Nodes))
	for _, n := range c.Nodes {
		mcRho[n.ID] = mc.TogglingRate(n.ID)
	}
	fmt.Printf("dynamic power (Monte Carlo toggling rates):                  %.3e\n",
		repro.DynamicPower(c, mcRho, vdd, freq))

	// Toggle-moment correlations (Eq. 13): the activity of a net
	// and its deepest fanout are strongly correlated.
	tm := repro.AnalyzeToggleMoments(c, in)
	end := c.CriticalEndpoint()
	path := c.CriticalPath()
	if len(path) >= 2 {
		first := path[0]
		fmt.Printf("\ntoggling correlation along the critical path (%s → %s): %.3f\n",
			c.Nodes[first].Name, c.Nodes[end].Name, tm.Corr(first, end))
	}
}
