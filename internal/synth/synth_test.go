package synth

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
)

func TestProfilesMatchPaperSuite(t *testing.T) {
	want := []string{"s208", "s298", "s344", "s349", "s382", "s386", "s526", "s1196", "s1238"}
	ps := Profiles()
	if len(ps) != len(want) {
		t.Fatalf("got %d profiles, want %d", len(ps), len(want))
	}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Errorf("profile %d = %s, want %s", i, p.Name, want[i])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
	if _, ok := ProfileByName("s344"); !ok {
		t.Error("ProfileByName(s344) missing")
	}
	if _, ok := ProfileByName("s9999"); ok {
		t.Error("ProfileByName accepted unknown name")
	}
}

func TestGenerateMatchesProfileCounts(t *testing.T) {
	for _, p := range Profiles() {
		c, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		st := c.Stats()
		if st.Inputs != p.Inputs || st.Outputs != p.Outputs || st.DFFs != p.DFFs ||
			st.Gates != p.Gates || st.Depth != p.Depth {
			t.Errorf("%s: generated %+v, want %+v", p.Name, st, p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("s298")
	c1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := bench.Write(&b1, c1); err != nil {
		t.Fatal(err)
	}
	if err := bench.Write(&b2, c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("generation is not deterministic")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	p, _ := ProfileByName("s298")
	p.Seed = 123
	c1, _ := Generate(p)
	p.Seed = 456
	c2, _ := Generate(p)
	var b1, b2 bytes.Buffer
	bench.Write(&b1, c1)
	bench.Write(&b2, c2)
	if bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("different seeds produced identical circuits")
	}
}

func TestGenerateStructuralInvariants(t *testing.T) {
	for _, p := range Profiles() {
		c, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// Fanin bound respected; parity gates stay 2-input.
		for _, n := range c.Nodes {
			if !n.Type.Combinational() {
				continue
			}
			if len(n.Fanin) > 4 {
				t.Errorf("%s/%s: fanin %d > 4", p.Name, n.Name, len(n.Fanin))
			}
			if n.Type.Parity() && len(n.Fanin) != 2 {
				t.Errorf("%s/%s: parity gate with %d inputs", p.Name, n.Name, len(n.Fanin))
			}
			// Distinct fanin nets.
			seen := map[int32]bool{}
			for _, f := range n.Fanin {
				if seen[int32(f)] {
					t.Errorf("%s/%s: duplicate fanin", p.Name, n.Name)
				}
				seen[int32(f)] = true
			}
		}
		// The critical endpoint is at the profile depth.
		end := c.CriticalEndpoint()
		if got := c.Nodes[end].Level; got != p.Depth {
			t.Errorf("%s: critical endpoint level %d, want %d", p.Name, got, p.Depth)
		}
		// Critical path climbs one level per hop.
		path := c.CriticalPath()
		if len(path) != p.Depth+1 {
			t.Errorf("%s: critical path length %d, want %d", p.Name, len(path), p.Depth+1)
		}
	}
}

func TestGenerateRoundTripsThroughBench(t *testing.T) {
	p, _ := ProfileByName("s344")
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bench.Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := bench.Parse(&buf, p.Name)
	if err != nil {
		t.Fatalf("generated circuit does not re-parse: %v", err)
	}
	if c.Stats() != c2.Stats() {
		t.Errorf("round trip changed stats: %+v vs %+v", c.Stats(), c2.Stats())
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "", Inputs: 1, Gates: 5, Depth: 2},
		{Name: "x", Inputs: 0, DFFs: 0, Gates: 5, Depth: 2},
		{Name: "x", Inputs: 1, Gates: 0, Depth: 2},
		{Name: "x", Inputs: 1, Gates: 5, Depth: 0},
		{Name: "x", Inputs: 1, Gates: 3, Depth: 5},
		{Name: "x", Inputs: 1, Gates: 5, Depth: 2, Outputs: 9},
		{Name: "x", Inputs: 1, Gates: 5, Depth: 2, DFFs: 9},
		{Name: "x", Inputs: 1, Gates: 5, Depth: 2, MaxFanin: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted: %+v", i, p)
		}
		if _, err := Generate(p); err == nil {
			t.Errorf("Generate accepted bad profile %d", i)
		}
	}
}

func TestGenerateAll(t *testing.T) {
	cs, err := GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != len(Profiles()) {
		t.Errorf("GenerateAll returned %d circuits", len(cs))
	}
}

func TestGateMixRoughlyRespected(t *testing.T) {
	p, _ := ProfileByName("s1196")
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[logic.GateType]int{}
	for _, n := range c.Nodes {
		if n.Type.Combinational() {
			counts[n.Type]++
		}
	}
	// The NAND share should dominate and parity logic stay rare.
	if counts[logic.Nand] < counts[logic.Xor] {
		t.Errorf("gate mix off: NAND %d < XOR %d", counts[logic.Nand], counts[logic.Xor])
	}
	if counts[logic.Xor]+counts[logic.Xnor] > p.Gates/5 {
		t.Errorf("too much parity logic: %d", counts[logic.Xor]+counts[logic.Xnor])
	}
}
