// Command spstasoak is the SLO soak harness for spstad: it runs a
// closed-loop mixed hot/cold/delta load (internal/loadgen) against a
// daemon for a fixed duration while polling /debug/slo, and exits
// nonzero when the run violates its objectives — any SLO objective
// seen burning, a client-side p99 latency over the threshold, or a
// rejection rate over budget. `make soak` runs it for 60 seconds.
//
// By default the harness spawns the daemon in-process (the service
// package behind a real HTTP listener on 127.0.0.1), with soak-tuned
// SLO windows so violations surface within seconds rather than the
// production 5-minute slow window; -addr points it at an externally
// started daemon instead (whose own SLO configuration then applies).
//
// A violation leaves evidence: the daemon's auto-capture writes a
// diagnostic bundle (CPU+heap profiles, flight ring, the offending
// timeline window) under -debug-dir, and the harness lists the
// bundles it finds via /debug/captures before exiting. -json writes
// the client-side report (schema shared with spstaload) plus the
// server-side SLO summary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/loadgen"
	"repro/internal/service"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spstasoak:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	addr := flag.String("addr", "", "base URL of an already-running spstad (empty spawns one in-process)")
	duration := flag.Duration("duration", 60*time.Second, "soak duration")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers")
	circuits := flag.String("circuits", "s344,s1196", "comma-separated benchmark circuits")
	mix := flag.String("mix", "hot=0.6,cold=0.2,delta=0.2", "traffic mix weights (hot, cold, delta)")
	runs := flag.Int("runs", 5000, "Monte Carlo runs for cold requests")
	seed := flag.Int64("seed", 1, "load-pattern seed")
	poll := flag.Duration("poll", 2*time.Second, "/debug/slo polling period")
	jsonPath := flag.String("json", "", "write the report as JSON to this path")

	// Gates, applied to the client-side report at the end of the run
	// (the in-process daemon additionally evaluates them server-side
	// as burn-rate objectives).
	p99Limit := flag.Duration("p99-limit", 500*time.Millisecond, "client-side p99 latency gate across all classes")
	rejBudget := flag.Float64("rejection-budget", 0.01, "tolerable rejected-request fraction")

	// Spawned-daemon knobs (ignored with -addr).
	slots := flag.Int("slots", 0, "spawned daemon worker slots (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 16, "spawned daemon queue depth before 429s")
	timelineInterval := flag.Duration("timeline-interval", 200*time.Millisecond, "spawned daemon timeline sampling period")
	fastWindow := flag.Duration("slo-fast-window", 5*time.Second, "spawned daemon burn-rate fast window")
	slowWindow := flag.Duration("slo-slow-window", 20*time.Second, "spawned daemon burn-rate slow window")
	debugDir := flag.String("debug-dir", "", "spawned daemon auto-capture directory (empty = a fresh temp dir)")
	captureCPU := flag.Duration("capture-cpu", 500*time.Millisecond, "spawned daemon CPU-profile duration per capture")
	logLevel := flag.String("log-level", "warn", "spawned daemon log level")
	flag.Parse()

	weights, err := loadgen.ParseMix(*mix)
	if err != nil {
		return 2, err
	}

	base := *addr
	if base == "" {
		dir := *debugDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "spstasoak-debug-")
			if err != nil {
				return 2, err
			}
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			return 2, err
		}
		var level slog.Level
		if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
			return 2, fmt.Errorf("bad -log-level: %w", err)
		}
		svc := service.New(service.Config{
			Logger:        slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})),
			MaxConcurrent: *slots,
			MaxQueue:      *maxQueue,

			TimelineInterval:    *timelineInterval,
			SLOLatencyThreshold: p99Limit.Seconds(),
			SLOLatencyTarget:    0.99,
			SLORejectionBudget:  *rejBudget,
			SLOFastWindow:       *fastWindow,
			SLOSlowWindow:       *slowWindow,
			DebugDir:            dir,
			CaptureCPU:          *captureCPU,
			CaptureMinInterval:  10 * time.Second,
		})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 2, err
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("spawned spstad on %s (debug bundles in %s)\n", base, dir)
	}

	client := &http.Client{Timeout: time.Minute}

	// Poll /debug/slo throughout the run: a violation that burns and
	// recovers mid-soak still fails the gate.
	var mu sync.Mutex
	seen := map[string]bool{}
	stopPoll := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		t := time.NewTicker(*poll)
		defer t.Stop()
		for {
			select {
			case <-stopPoll:
				return
			case <-t.C:
				slo, err := fetchSLO(client, base)
				if err != nil {
					continue // transient; the final poll decides
				}
				mu.Lock()
				for _, name := range slo.Burning {
					if !seen[name] {
						fmt.Printf("SLO BURNING: %s\n", name)
					}
					seen[name] = true
				}
				mu.Unlock()
			}
		}
	}()

	fmt.Printf("soaking %s for %s: %d workers, mix %s\n", base, duration, *concurrency, *mix)
	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:     base,
		Duration:    *duration,
		Concurrency: *concurrency,
		Circuits:    strings.Split(*circuits, ","),
		Mix:         weights,
		Runs:        *runs,
		Seed:        *seed,
		Client:      client,
	})
	close(stopPoll)
	pollWG.Wait()
	if err != nil {
		return 2, err
	}

	// Final server-side state: one more /debug/slo read over a window
	// covering the whole run, for the client/server p99 agreement line
	// and any violation the poller's cadence missed.
	sloSum := &loadgen.SLOSummary{}
	if slo, err := fetchSLOWindow(client, base, *duration); err == nil {
		mu.Lock()
		for _, name := range slo.Burning {
			seen[name] = true
		}
		for _, obj := range slo.Objectives {
			if obj.Burning {
				seen[obj.Name] = true
			}
		}
		mu.Unlock()
		for _, ls := range slo.Latency {
			if ls.Series == "req.total.latency" {
				sloSum.ServerP50Sec = ls.P50
				sloSum.ServerP99Sec = ls.P99
			}
		}
		sloSum.Captures = slo.Captures
	}
	for name := range seen {
		sloSum.Violations = append(sloSum.Violations, name)
	}
	rep.SLO = sloSum

	all := rep.Class(loadgen.ClassAll)
	if all == nil {
		return 2, fmt.Errorf("no requests completed")
	}
	fmt.Printf("\n%d requests (%.0f req/s): p50 %s p99 %s, %d errors, %d rejected (%.2f%%)\n",
		rep.Requests, rep.ReqPerSec,
		fmtSec(all.P50Sec), fmtSec(all.P99Sec),
		all.Errors, all.Rejected, all.RejectionRate()*100)
	if sloSum.ServerP99Sec > 0 {
		fmt.Printf("server-side (/debug/slo): p50 %s p99 %s\n",
			fmtSec(sloSum.ServerP50Sec), fmtSec(sloSum.ServerP99Sec))
	}

	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			return 2, err
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}

	// Gate evaluation.
	var failures []string
	if len(sloSum.Violations) > 0 {
		failures = append(failures, fmt.Sprintf("SLO objectives burned: %s", strings.Join(sloSum.Violations, ", ")))
	}
	if p99 := time.Duration(all.P99Sec * float64(time.Second)); p99 > *p99Limit {
		failures = append(failures, fmt.Sprintf("client p99 %s over limit %s", p99.Round(time.Millisecond), p99Limit))
	}
	if rr := all.RejectionRate(); rr > *rejBudget {
		failures = append(failures, fmt.Sprintf("rejection rate %.2f%% over budget %.2f%%", rr*100, *rejBudget*100))
	}
	if len(failures) == 0 {
		fmt.Println("PASS: no SLO violations")
		return 0, nil
	}
	fmt.Println("\nFAIL:")
	for _, f := range failures {
		fmt.Println("  -", f)
	}
	listCaptures(client, base)
	return 1, nil
}

// sloResponse mirrors service.SLOResponse's fields the harness reads
// (decoded from JSON so -addr works against any spstad build).
type sloResponse struct {
	Burning    []string `json:"burning"`
	Objectives []struct {
		Name    string `json:"name"`
		Burning bool   `json:"burning"`
	} `json:"objectives"`
	Latency []struct {
		Series string  `json:"series"`
		P50    float64 `json:"p50"`
		P99    float64 `json:"p99"`
	} `json:"latency"`
	Captures int64 `json:"captures"`
}

func fetchSLO(client *http.Client, base string) (*sloResponse, error) {
	return fetchSLOWindow(client, base, 0)
}

func fetchSLOWindow(client *http.Client, base string, window time.Duration) (*sloResponse, error) {
	url := base + "/debug/slo"
	if window > 0 {
		url += "?window=" + window.String()
	}
	body, err := loadgen.Get(client, url)
	if err != nil {
		return nil, err
	}
	var slo sloResponse
	if err := json.Unmarshal([]byte(body), &slo); err != nil {
		return nil, err
	}
	return &slo, nil
}

// listCaptures prints the daemon's auto-capture bundles so a failing
// soak points straight at its evidence.
func listCaptures(client *http.Client, base string) {
	body, err := loadgen.Get(client, base+"/debug/captures")
	if err != nil {
		return
	}
	var out struct {
		Captures []struct {
			Name     string   `json:"name"`
			Complete bool     `json:"complete"`
			Files    []string `json:"files"`
		} `json:"captures"`
	}
	if json.Unmarshal([]byte(body), &out) != nil || len(out.Captures) == 0 {
		return
	}
	fmt.Println("capture bundles (GET /debug/captures/{name}/{file}):")
	for _, c := range out.Captures {
		fmt.Printf("  %s complete=%v files=%s\n", c.Name, c.Complete, strings.Join(c.Files, ","))
	}
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(100 * time.Microsecond).String()
}
